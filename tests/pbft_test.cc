#include <set>

#include "gtest/gtest.h"
#include "pbft/engine.h"
#include "tests/test_util.h"

namespace ziziphus {
namespace {

using testutil::PbftCluster;

TEST(PbftTest, CommitsSingleRequest) {
  PbftCluster c(4, 1);
  c.client->SubmitLocal(c.members[0], "hello");
  c.sim.RunFor(Seconds(1));
  EXPECT_EQ(c.client->completed(), 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.app(i).applied(), 1u) << "replica " << i;
    EXPECT_EQ(c.engine(i).last_executed(), 1u);
  }
}

TEST(PbftTest, AllReplicasReachSameState) {
  PbftCluster c(4, 1);
  c.client->SubmitLocalSequence(c.members[0], 50, "op");
  c.sim.RunFor(Seconds(5));
  EXPECT_EQ(c.client->completed(), 50u);
  std::uint64_t d = c.app(0).StateDigest();
  for (int i = 1; i < 4; ++i) EXPECT_EQ(c.app(i).StateDigest(), d);
}

TEST(PbftTest, BatchingCombinesRequests) {
  // 64 concurrent clients, one request each, landing within one batch
  // window: far fewer than 64 slots get used.
  pbft::PbftConfig base;
  base.batch_max = 16;
  PbftCluster c(4, 1, /*seed=*/1, /*one_way_us=*/1000, base);
  std::vector<std::unique_ptr<testutil::TestClient>> extra;
  for (int i = 0; i < 63; ++i) {
    extra.push_back(std::make_unique<testutil::TestClient>(&c.keys, 1));
    c.sim.Register(extra.back().get(), 0);
  }
  c.client->SubmitLocal(c.members[0], "op");
  for (auto& cl : extra) cl->SubmitLocal(c.members[0], "op");
  c.sim.RunFor(Seconds(1));
  std::size_t done = c.client->completed();
  for (auto& cl : extra) done += cl->completed();
  EXPECT_EQ(done, 64u);
  EXPECT_LE(c.engine(0).last_executed(), 10u);
  EXPECT_GE(c.engine(0).last_executed(), 4u);
}

TEST(PbftTest, RequestToBackupIsRelayed) {
  PbftCluster c(4, 1);
  c.client->SubmitLocal(c.members[2], "via-backup");
  c.sim.RunFor(Seconds(1));
  EXPECT_EQ(c.client->completed(), 1u);
}

TEST(PbftTest, DuplicateRequestExecutesOnce) {
  PbftCluster c(4, 1);
  pbft::Operation op;
  op.client = c.client->id();
  op.timestamp = 1;
  op.command = "only-once";
  auto req = std::make_shared<pbft::ClientRequestMsg>();
  req->op = op;
  req->client_sig = c.keys.Sign(c.client->id(), req->ComputeDigest());
  c.client->Send(c.members[0], req);
  c.sim.RunFor(Millis(300));
  c.client->Send(c.members[0], req);  // replay
  c.sim.RunFor(Millis(500));
  EXPECT_EQ(c.app(0).applied(), 1u);
}

TEST(PbftTest, BadClientSignatureRejected) {
  PbftCluster c(4, 1);
  pbft::Operation op;
  op.client = c.client->id();
  op.timestamp = 1;
  op.command = "forged";
  auto req = std::make_shared<pbft::ClientRequestMsg>();
  req->op = op;
  req->client_sig = crypto::Signature{c.client->id(), 0xbad};
  c.client->Send(c.members[0], req);
  c.sim.RunFor(Millis(500));
  EXPECT_EQ(c.app(0).applied(), 0u);
  EXPECT_GE(c.sim.counters().Get(obs::CounterId::kPbftBadClientSig), 1u);
}

TEST(PbftTest, ToleratesBackupCrash) {
  PbftCluster c(4, 1);
  c.sim.faults().Crash(c.members[3]);
  c.client->SubmitLocalSequence(c.members[0], 10, "op");
  c.sim.RunFor(Seconds(2));
  EXPECT_EQ(c.client->completed(), 10u);
}

TEST(PbftTest, ViewChangeOnPrimaryCrash) {
  pbft::PbftConfig base;
  base.request_timeout_us = Millis(200);
  PbftCluster c(4, 1, 1, 1000, base);
  c.client->EnableRetry(c.members, Millis(400));
  c.sim.faults().Crash(c.members[0]);  // primary of view 0
  c.client->SubmitLocal(c.members[1], "survive");
  c.sim.RunFor(Seconds(3));
  EXPECT_EQ(c.client->completed(), 1u);
  EXPECT_GE(c.engine(1).view(), 1u);
  EXPECT_TRUE(c.engine(1).view_active());
  // All live replicas executed it.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(c.app(i).applied(), 1u);
}

TEST(PbftTest, ProgressAfterViewChange) {
  pbft::PbftConfig base;
  base.request_timeout_us = Millis(200);
  PbftCluster c(4, 1, 1, 1000, base);
  c.client->EnableRetry(c.members, Millis(400));
  c.sim.faults().Crash(c.members[0]);
  c.client->SubmitLocal(c.members[1], "first");
  c.sim.RunFor(Seconds(3));
  ASSERT_EQ(c.client->completed(), 1u);
  // New primary (member 1) serves subsequent requests quickly.
  c.client->SubmitLocal(c.members[1], "second");
  c.sim.RunFor(Seconds(1));
  EXPECT_EQ(c.client->completed(), 2u);
}

TEST(PbftTest, CheckpointAdvancesStableSeq) {
  pbft::PbftConfig base;
  base.checkpoint_interval = 4;
  base.batch_max = 1;
  base.batch_timeout_us = 100;
  PbftCluster c(4, 1, 1, 1000, base);
  c.client->SubmitLocalSequence(c.members[0], 12, "op");
  c.sim.RunFor(Seconds(3));
  ASSERT_EQ(c.client->completed(), 12u);
  EXPECT_GE(c.engine(0).stable_seq(), 4u);
  EXPECT_EQ(c.engine(0).last_stable_checkpoint().seq,
            c.engine(0).stable_seq());
  EXPECT_GE(c.engine(0).last_stable_checkpoint().certificate.size(), 3u);
}

TEST(PbftTest, CommitLogTruncatedAtCheckpoint) {
  pbft::PbftConfig base;
  base.checkpoint_interval = 4;
  base.batch_max = 1;
  base.batch_timeout_us = 100;
  PbftCluster c(4, 1, 1, 1000, base);
  c.client->SubmitLocalSequence(c.members[0], 20, "op");
  c.sim.RunFor(Seconds(4));
  ASSERT_EQ(c.client->completed(), 20u);
  EXPECT_LT(c.engine(0).commit_log().size(), 20u);
}

TEST(PbftTest, LaggingReplicaCatchesUpViaStateTransfer) {
  pbft::PbftConfig base;
  base.checkpoint_interval = 4;
  base.batch_max = 1;
  base.batch_timeout_us = 100;
  PbftCluster c(4, 1, 1, 1000, base);
  // Isolate replica 3 from normal traffic for a while.
  for (int i = 0; i < 3; ++i) c.sim.faults().Partition(c.members[3], c.members[i]);
  c.client->SubmitLocalSequence(c.members[0], 12, "op");
  c.sim.RunFor(Seconds(3));
  EXPECT_EQ(c.app(3).applied(), 0u);
  for (int i = 0; i < 3; ++i) c.sim.faults().Heal(c.members[3], c.members[i]);
  // More traffic triggers checkpoints the lagging replica can fetch.
  c.client->SubmitLocalSequence(c.members[0], 12, "more");
  c.sim.RunFor(Seconds(4));
  EXPECT_GE(c.engine(3).last_executed(), c.engine(0).stable_seq());
}

TEST(PbftTest, StateTransferRotatesAwayFromUnreachablePeer) {
  pbft::PbftConfig base;
  base.checkpoint_interval = 4;
  base.batch_max = 1;
  base.batch_timeout_us = 100;
  base.request_timeout_us = Millis(200);
  PbftCluster c(4, 1, 1, 1000, base);
  for (int i = 0; i < 3; ++i) {
    c.sim.faults().Partition(c.members[3], c.members[i]);
  }
  c.client->SubmitLocalSequence(c.members[0], 12, "op");
  c.sim.RunFor(Seconds(3));
  ASSERT_EQ(c.app(3).applied(), 0u);
  for (int i = 0; i < 3; ++i) c.sim.faults().Heal(c.members[3], c.members[i]);
  // The laggard asks the lowest-id checkpoint voter (member 0) first. Its
  // requests to 0 are blackholed one-way — checkpoint votes still arrive —
  // so only the retry timer's peer rotation can complete the catch-up (the
  // pre-retry protocol sent exactly one request and wedged forever here).
  c.sim.faults().CutOneWay(c.members[3], c.members[0]);
  c.client->SubmitLocalSequence(c.members[0], 12, "more");
  c.sim.RunFor(Seconds(6));
  EXPECT_GE(c.engine(3).last_executed(), c.engine(0).stable_seq());
  EXPECT_GE(
      c.sim.counters().Get(obs::CounterId::kRecoveryStateTransferRetries), 1u);
}

TEST(StateTransferBackoffTest, DoublesUntilCapAndStaysBounded) {
  pbft::PbftConfig cfg;
  cfg.request_timeout_us = Millis(100);
  cfg.state_transfer_backoff_cap_us = Millis(800);
  const Duration base = cfg.request_timeout_us;
  const Duration cap = cfg.state_transfer_backoff_cap_us;

  Duration prev = 0;
  for (std::uint64_t attempt = 0; attempt < 40; ++attempt) {
    Duration d = pbft::PbftEngine::StateTransferBackoff(cfg, attempt, 1, 1);
    // Monotone non-decreasing: doubling outruns the <= 1/8 jitter.
    EXPECT_GE(d, prev) << "attempt " << attempt;
    // Never below the request timeout, never above the cap plus its jitter.
    EXPECT_GE(d, base);
    EXPECT_LE(d, cap + cap / 8) << "attempt " << attempt;
    prev = d;
  }
  // The cap binds: a huge attempt count lands at cap (+ jitter), not at
  // base << attempts.
  Duration capped = pbft::PbftEngine::StateTransferBackoff(cfg, 63, 1, 1);
  EXPECT_GE(capped, cap);
  EXPECT_LE(capped, cap + cap / 8);
}

TEST(StateTransferBackoffTest, JitterIsDeterministicAndDesynchronizes) {
  pbft::PbftConfig cfg;
  cfg.request_timeout_us = Millis(100);
  cfg.state_transfer_backoff_cap_us = Millis(800);
  // Deterministic: same (attempt, replica, seq) gives the same delay.
  EXPECT_EQ(pbft::PbftEngine::StateTransferBackoff(cfg, 2, 3, 5),
            pbft::PbftEngine::StateTransferBackoff(cfg, 2, 3, 5));
  // Replicas retrying the same transfer spread out: at least two distinct
  // delays among a group of seven.
  std::set<Duration> delays;
  for (NodeId r = 0; r < 7; ++r) {
    delays.insert(pbft::PbftEngine::StateTransferBackoff(cfg, 2, r, 5));
  }
  EXPECT_GE(delays.size(), 2u);
}

TEST(StateTransferBackoffTest, CapBelowBaseClampsToBase) {
  // A misconfigured cap smaller than the request timeout must not shrink
  // the delay below the liveness-critical base.
  pbft::PbftConfig cfg;
  cfg.request_timeout_us = Millis(500);
  cfg.state_transfer_backoff_cap_us = Millis(100);
  const Duration base = cfg.request_timeout_us;
  for (std::uint64_t attempt : {0u, 1u, 7u}) {
    Duration d = pbft::PbftEngine::StateTransferBackoff(cfg, attempt, 0, 1);
    EXPECT_GE(d, base);
    EXPECT_LE(d, base + base / 8);
  }
}

// A Byzantine primary that sends different batches to different replicas.
class EquivocatingEngine : public pbft::PbftEngine {
 public:
  using PbftEngine::PbftEngine;

 protected:
  void EmitPrePrepare(
      const std::shared_ptr<pbft::PrePrepareMsg>& msg) override {
    // Send the honest batch to half the replicas and a doctored one (same
    // seq, different contents) to the rest.
    auto forged = std::make_shared<pbft::PrePrepareMsg>();
    forged->view = msg->view;
    forged->seq = msg->seq;
    pbft::Batch other;
    pbft::Operation evil;
    evil.client = kInvalidClient;
    evil.timestamp = 999999;
    evil.command = "EVIL";
    other.ops.push_back(evil);
    forged->batch = other;
    forged->batch_digest = other.ComputeDigest();
    forged->sig = keys_->Sign(transport_->self(), forged->digest());
    const auto& members = config_.members;
    for (std::size_t i = 0; i < members.size(); ++i) {
      transport_->Send(members[i], i % 2 == 0 ? sim::MessagePtr(msg)
                                              : sim::MessagePtr(forged));
    }
  }
};

class EquivocatingReplica : public sim::Process, public sim::Transport {
 public:
  void Init(const crypto::KeyRegistry* keys, pbft::PbftConfig config) {
    app_ = std::make_unique<pbft::EchoStateMachine>();
    engine_ = std::make_unique<EquivocatingEngine>(this, keys,
                                                   std::move(config),
                                                   app_.get());
  }
  NodeId self() const override { return id(); }
  SimTime Now() const override { return Process::Now(); }
  void Send(NodeId dst, sim::MessagePtr msg) override {
    Process::Send(dst, std::move(msg));
  }
  void Multicast(const std::vector<NodeId>& dsts,
                 sim::MessagePtr msg) override {
    Process::Multicast(dsts, std::move(msg));
  }
  std::uint64_t SetTimer(Duration delay, std::uint64_t tag) override {
    return Process::SetTimer(delay, tag);
  }
  void CancelTimer(std::uint64_t t) override { Process::CancelTimer(t); }
  void ChargeCpu(Duration cost) override { Process::ChargeCpu(cost); }
  CounterSet& counters() override { return simulation()->counters(); }

 protected:
  void OnMessage(const sim::MessagePtr& msg) override {
    engine_->HandleMessage(msg);
  }
  void OnTimer(std::uint64_t tag) override { engine_->HandleTimer(tag); }

 private:
  std::unique_ptr<pbft::EchoStateMachine> app_;
  std::unique_ptr<EquivocatingEngine> engine_;
};

TEST(PbftByzantineTest, EquivocatingPrimaryCannotSplitState) {
  crypto::KeyRegistry keys(1 ^ 0x5eedc0deULL);
  sim::Simulation sim(1, sim::LatencyModel::Uniform(1, 1000));

  EquivocatingReplica evil;
  std::vector<std::unique_ptr<baselines::PbftReplicaProcess>> honest;
  std::vector<NodeId> members;
  members.push_back(sim.Register(&evil, 0));  // member 0 = primary = evil
  for (int i = 0; i < 3; ++i) {
    auto rep = std::make_unique<baselines::PbftReplicaProcess>();
    members.push_back(sim.Register(rep.get(), 0));
    honest.push_back(std::move(rep));
  }
  pbft::PbftConfig cfg;
  cfg.members = members;
  cfg.f = 1;
  cfg.request_timeout_us = Millis(300);
  evil.Init(&keys, cfg);
  for (auto& rep : honest) {
    rep->Init(&keys, cfg, std::make_unique<pbft::EchoStateMachine>());
  }
  testutil::TestClient client(&keys, 1);
  sim.Register(&client, 0);
  client.SubmitLocal(members[0], "target");
  sim.RunFor(Seconds(4));

  // Safety: no two honest replicas diverge.
  std::set<std::uint64_t> digests;
  for (auto& rep : honest) {
    auto& app = static_cast<pbft::EchoStateMachine&>(rep->app());
    if (app.applied() > 0) digests.insert(app.StateDigest());
  }
  EXPECT_LE(digests.size(), 1u);
  // The doctored batch never executes anywhere.
  for (auto& rep : honest) {
    auto& app = static_cast<pbft::EchoStateMachine&>(rep->app());
    EXPECT_LE(app.applied(), 1u);
  }
}

}  // namespace
}  // namespace ziziphus
