#include "gtest/gtest.h"
#include "storage/checkpoint.h"
#include "storage/kv_store.h"
#include "storage/log.h"

namespace ziziphus::storage {
namespace {

TEST(KvStoreTest, PutGetDelete) {
  KvStore kv;
  kv.Put("a", "1");
  EXPECT_EQ(kv.Get("a").value(), "1");
  kv.Put("a", "2");
  EXPECT_EQ(kv.Get("a").value(), "2");
  EXPECT_TRUE(kv.Delete("a"));
  EXPECT_FALSE(kv.Get("a").has_value());
  EXPECT_FALSE(kv.Delete("a"));
}

TEST(KvStoreTest, DigestIsContentDefined) {
  KvStore a, b;
  a.Put("x", "1");
  a.Put("y", "2");
  b.Put("y", "2");
  b.Put("x", "1");
  EXPECT_EQ(a.StateDigest(), b.StateDigest());  // order-insensitive
  b.Put("x", "3");
  EXPECT_NE(a.StateDigest(), b.StateDigest());
  b.Put("x", "1");
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(KvStoreTest, DigestReturnsToEmptyAfterDeletes) {
  KvStore kv;
  std::uint64_t empty = kv.StateDigest();
  kv.Put("a", "1");
  kv.Put("b", "2");
  kv.Delete("a");
  kv.Delete("b");
  EXPECT_EQ(kv.StateDigest(), empty);
}

TEST(KvStoreTest, SnapshotRestore) {
  KvStore a;
  a.Put("k1", "v1");
  a.Put("k2", "v2");
  auto snap = a.Snapshot();
  KvStore b;
  b.Put("junk", "x");
  b.Restore(snap);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.StateDigest(), a.StateDigest());
  EXPECT_EQ(b.Get("k1").value(), "v1");
}

TEST(KvStoreTest, VersionMonotonic) {
  KvStore kv;
  std::uint64_t v0 = kv.version();
  kv.Put("a", "1");
  kv.Delete("a");
  EXPECT_GT(kv.version(), v0 + 1);
}

TEST(CommitLogTest, AppendAndFind) {
  CommitLog log;
  log.Append({1, 0x11, "a"});
  log.Append({2, 0x22, "b"});
  log.Append({5, 0x55, "gap"});
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.Find(2)->digest, 0x22u);
  EXPECT_EQ(log.Find(5)->digest, 0x55u);
  EXPECT_FALSE(log.Find(3).has_value());
  EXPECT_FALSE(log.Find(9).has_value());
}

TEST(CommitLogTest, TruncatePrefix) {
  CommitLog log;
  for (SeqNum s = 1; s <= 10; ++s) log.Append({s, s, ""});
  log.TruncatePrefix(7);
  EXPECT_EQ(log.first_seq(), 8u);
  EXPECT_EQ(log.last_seq(), 10u);
  EXPECT_FALSE(log.Find(7).has_value());
  EXPECT_TRUE(log.Find(8).has_value());
}

TEST(CheckpointStoreTest, InstallsNewerOnly) {
  CheckpointStore store;
  Checkpoint cp1;
  cp1.seq = 10;
  cp1.state_digest = 1;
  EXPECT_TRUE(store.Install(0, cp1));
  Checkpoint stale;
  stale.seq = 5;
  EXPECT_FALSE(store.Install(0, stale));
  EXPECT_EQ(store.LatestSeq(0).value(), 10u);
  Checkpoint cp2;
  cp2.seq = 20;
  cp2.state_digest = 2;
  EXPECT_TRUE(store.Install(0, cp2));
  EXPECT_EQ(store.Latest(0)->state_digest, 2u);
  EXPECT_FALSE(store.LatestSeq(9).has_value());
}

}  // namespace
}  // namespace ziziphus::storage
