#include "app/bank.h"
#include "app/experiment.h"
#include "app/health.h"
#include "gtest/gtest.h"

namespace ziziphus::app {
namespace {

pbft::Operation Op(ClientId c, RequestTimestamp ts, const std::string& cmd) {
  pbft::Operation op;
  op.client = c;
  op.timestamp = ts;
  op.command = cmd;
  return op;
}

TEST(BankTest, OpenDepositBalance) {
  BankStateMachine bank;
  EXPECT_EQ(bank.Apply(Op(1, 1, "OPEN 100")), "ok");
  EXPECT_EQ(bank.Apply(Op(1, 2, "DEP 50")), "ok");
  EXPECT_EQ(bank.Apply(Op(1, 3, "BAL")), "150");
  EXPECT_EQ(bank.BalanceOf(1), 150);
}

TEST(BankTest, TransferMovesMoney) {
  BankStateMachine bank;
  bank.OpenAccount(1, 100);
  bank.OpenAccount(2, 10);
  EXPECT_EQ(bank.Apply(Op(1, 1, "XFER 2 30")), "ok");
  EXPECT_EQ(bank.BalanceOf(1), 70);
  EXPECT_EQ(bank.BalanceOf(2), 40);
  EXPECT_EQ(bank.TotalBalance(), 110);
}

TEST(BankTest, TransferRejectsInsufficientFunds) {
  BankStateMachine bank;
  bank.OpenAccount(1, 10);
  bank.OpenAccount(2, 0);
  EXPECT_EQ(bank.Apply(Op(1, 1, "XFER 2 30")), "err:funds");
  EXPECT_EQ(bank.BalanceOf(1), 10);
}

TEST(BankTest, MissingAccountsRejected) {
  BankStateMachine bank;
  EXPECT_EQ(bank.Apply(Op(1, 1, "DEP 5")), "err:noacct");
  EXPECT_EQ(bank.Apply(Op(1, 2, "XFER 2 5")), "err:noacct");
  EXPECT_EQ(bank.Apply(Op(1, 3, "BAL")), "err:noacct");
}

TEST(BankTest, MalformedCommandsRejected) {
  BankStateMachine bank;
  EXPECT_EQ(bank.Apply(Op(1, 1, "")), "err:empty");
  EXPECT_EQ(bank.Apply(Op(1, 2, "NOPE")), "err:verb");
  EXPECT_EQ(bank.Apply(Op(1, 3, "DEP abc")), "err:amount");
  EXPECT_EQ(bank.Apply(Op(1, 4, "DEP -5")), "err:amount");
  EXPECT_EQ(bank.Apply(Op(1, 5, "XFER x y")), "err:args");
}

TEST(BankTest, ClientRecordsRoundtrip) {
  BankStateMachine a, b;
  a.OpenAccount(7, 420);
  auto records = a.ClientRecords(7);
  ASSERT_EQ(records.size(), 1u);
  b.InstallClientRecords(7, records);
  EXPECT_EQ(b.BalanceOf(7), 420);
  b.EvictClientRecords(7);
  EXPECT_FALSE(b.HasAccount(7));
}

TEST(BankTest, SnapshotRestoreDigest) {
  BankStateMachine a, b;
  a.OpenAccount(1, 5);
  a.OpenAccount(2, 10);
  b.Restore(a.Snapshot());
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  EXPECT_EQ(b.TotalBalance(), 15);
}

TEST(HealthTest, VitalsRecorded) {
  HealthStateMachine h;
  EXPECT_EQ(h.Apply(Op(3, 1, "VITAL hr 72")), "ok");
  EXPECT_EQ(h.Apply(Op(3, 2, "VITAL hr 75")), "ok");
  EXPECT_EQ(h.Apply(Op(3, 3, "COUNT hr")), "2");
  EXPECT_EQ(h.Apply(Op(3, 4, "LAST hr")), "75");
  EXPECT_EQ(h.Apply(Op(3, 5, "LAST bp")), "none");
  EXPECT_EQ(h.Apply(Op(3, 6, "bogus")), "err:verb");
}

TEST(HealthTest, RecordsArePerPatient) {
  HealthStateMachine h;
  h.Apply(Op(1, 1, "VITAL hr 70"));
  h.Apply(Op(2, 1, "VITAL hr 90"));
  auto r1 = h.ClientRecords(1);
  auto r2 = h.ClientRecords(2);
  EXPECT_EQ(r1.size(), 2u);  // count + last
  EXPECT_EQ(r2.size(), 2u);
  EXPECT_TRUE(r1.begin()->first.rfind("pt/1/", 0) == 0);

  HealthStateMachine other;
  other.InstallClientRecords(1, r1);
  EXPECT_EQ(other.Apply(Op(1, 2, "LAST hr")), "70");
}

TEST(DeploymentTest, PaperPlacements) {
  auto d3 = PaperDeployment(3);
  ASSERT_EQ(d3.zones.size(), 3u);
  EXPECT_EQ(d3.zones[0].region, sim::kCalifornia);
  EXPECT_EQ(d3.zones[2].region, sim::kQuebec);
  EXPECT_EQ(d3.num_clusters(), 1u);
  EXPECT_EQ(d3.nodes_per_zone(), 4u);

  auto d7 = PaperDeployment(7);
  EXPECT_EQ(d7.zones.size(), 7u);

  auto dc = ClusteredDeployment(4, 3);
  EXPECT_EQ(dc.zones.size(), 12u);
  EXPECT_EQ(dc.num_clusters(), 4u);
}

TEST(ExperimentSmokeTest, ZiziphusTinyRun) {
  WorkloadSpec wl;
  wl.clients_per_zone = 5;
  wl.warmup = Millis(400);
  wl.measure = Millis(800);
  auto r = RunExperiment(Protocol::kZiziphus, PaperDeployment(3), wl);
  EXPECT_GT(r.local_ops + r.global_ops, 20u) << r.ToString();
  EXPECT_GT(r.throughput_tps, 0.0);
  EXPECT_GT(r.avg_latency_ms, 0.0);
}

TEST(ExperimentSmokeTest, FlatPbftTinyRun) {
  WorkloadSpec wl;
  wl.clients_per_zone = 5;
  wl.warmup = Millis(400);
  wl.measure = Millis(800);
  auto r = RunExperiment(Protocol::kFlatPbft, PaperDeployment(3), wl);
  EXPECT_GT(r.local_ops, 10u) << r.ToString();
}

TEST(ExperimentSmokeTest, StewardTinyRun) {
  WorkloadSpec wl;
  wl.clients_per_zone = 5;
  wl.warmup = Millis(400);
  wl.measure = Millis(800);
  auto r = RunExperiment(Protocol::kSteward, PaperDeployment(3), wl);
  EXPECT_GT(r.global_ops, 5u) << r.ToString();
  EXPECT_EQ(r.local_ops, 0u);
}

TEST(ExperimentSmokeTest, TwoLevelTinyRun) {
  WorkloadSpec wl;
  wl.clients_per_zone = 5;
  wl.warmup = Millis(400);
  wl.measure = Millis(800);
  auto r = RunExperiment(Protocol::kTwoLevelPbft, PaperDeployment(3), wl);
  EXPECT_GT(r.local_ops + r.global_ops, 10u) << r.ToString();
}

TEST(ExperimentSmokeTest, ClusteredZiziphusRun) {
  WorkloadSpec wl;
  wl.clients_per_zone = 4;
  wl.warmup = Millis(400);
  wl.measure = Millis(800);
  wl.mix.global_fraction = 0.3;
  wl.mix.cross_cluster_fraction = 0.5;
  auto r = RunExperiment(Protocol::kZiziphus, ClusteredDeployment(2), wl);
  EXPECT_GT(r.local_ops + r.global_ops, 10u) << r.ToString();
}

}  // namespace
}  // namespace ziziphus::app
