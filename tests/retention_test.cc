// Log lifecycle and retention: checkpoint-anchored trimming of the commit
// log / prepared proofs / WAL, reply-cache eviction with synthesized
// replay acknowledgements, the trim-vs-rejoin races (an amnesiac asking
// for a trimmed sequence must converge via snapshot install; trimming
// racing a view change must never drop a prepared-but-uncheckpointed
// proof), and the long-horizon soak harness (memory bound, determinism,
// delta-vs-full rejoin cost).

#include <memory>
#include <string>
#include <vector>

#include "app/bank.h"
#include "app/soak.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "sim/invariants.h"
#include "tests/test_util.h"

namespace ziziphus {
namespace {

using app::BankStateMachine;
using app::RejoinProbeOptions;
using app::RejoinProbeResult;
using app::RunRejoinProbe;
using app::RunZiziphusSoak;
using app::SoakOptions;
using app::SoakReport;
using core::NodeConfig;
using core::ZiziphusSystem;
using testutil::PbftCluster;

std::uint64_t CounterOf(const std::map<std::string, std::uint64_t>& counters,
                        const std::string& name) {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// --------------------------------------------------- checkpoint trimming

TEST(RetentionTest, CheckpointTrimBoundsCommitLogAndProofs) {
  pbft::PbftConfig cfg;
  cfg.checkpoint_interval = 4;
  PbftCluster c(4, 1, /*seed=*/11, /*one_way_us=*/1000, cfg);
  c.client->EnableRetry(c.members, Millis(900));
  c.client->SubmitLocalSequence(c.members[0], 30, "op ");
  c.sim.RunFor(Seconds(20));
  ASSERT_EQ(c.client->completed(), 30u);

  EXPECT_GE(c.sim.counters().Get(obs::CounterId::kPbftLogTrims), 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    auto r = c.engine(i).retention();
    EXPECT_GT(c.engine(i).stable_seq(), 0u) << "replica " << i;
    // The live window is everything above the stable checkpoint plus at
    // most one uncollected interval — far less than the 30-op history.
    EXPECT_LT(r.commit_log_entries, 15u) << "replica " << i;
    EXPECT_LT(r.prepared_proofs, 15u) << "replica " << i;
    EXPECT_LT(r.wal_entries, 15u) << "replica " << i;
  }
}

TEST(RetentionTest, TrimDisabledRetainsFullHistory) {
  pbft::PbftConfig cfg;
  cfg.checkpoint_interval = 4;
  cfg.trim_at_checkpoint = false;
  PbftCluster c(4, 1, /*seed=*/11, /*one_way_us=*/1000, cfg);
  c.client->EnableRetry(c.members, Millis(900));
  c.client->SubmitLocalSequence(c.members[0], 30, "op ");
  c.sim.RunFor(Seconds(20));
  ASSERT_EQ(c.client->completed(), 30u);

  EXPECT_EQ(c.sim.counters().Get(obs::CounterId::kPbftLogTrims), 0u);
  // The control arm keeps the whole history: every executed op stays in
  // the commit log even though checkpoints advanced past it.
  auto r = c.engine(1).retention();
  EXPECT_GE(r.commit_log_entries, 30u);
}

// ------------------------------------------------- reply-cache eviction

TEST(RetentionTest, ReplyCacheEvictsSupersededEntriesAndReplaysSynth) {
  pbft::PbftConfig cfg;
  cfg.checkpoint_interval = 4;
  PbftCluster c(4, 1, /*seed=*/13, /*one_way_us=*/1000, cfg);
  testutil::TestClient other(&c.keys, 1);
  c.sim.Register(&other, 0);
  c.client->EnableRetry(c.members, Millis(900));
  other.EnableRetry(c.members, Millis(900));

  // Client A executes once, then goes quiet.
  auto t1 = c.client->SubmitLocal(c.members[0], "hello");
  c.sim.RunFor(Seconds(2));
  ASSERT_TRUE(c.client->IsComplete(t1));
  const std::string first_result = c.client->ResultOf(t1);
  EXPECT_FALSE(first_result.empty());

  // Client B pushes the stable checkpoint far past A's last reply.
  other.SubmitLocalSequence(c.members[0], 12, "fill ");
  c.sim.RunFor(Seconds(10));
  ASSERT_EQ(other.completed(), 12u);
  EXPECT_GE(c.sim.counters().Get(obs::CounterId::kPbftReplyCacheEvictions),
            1u);
  for (std::size_t i = 0; i < 4; ++i) {
    auto r = c.engine(i).retention();
    // A's cached reply is gone, but the client-table stub that proves
    // execution (the duplicate filter) survives eviction.
    EXPECT_LT(r.reply_cache_entries, r.client_table_entries)
        << "replica " << i;
  }

  // A retransmits the executed request: the cache is empty, so replicas
  // synthesize an empty-result acknowledgement (clients vote by timestamp
  // and replica, never payload) instead of re-executing.
  pbft::Operation op;
  op.client = c.client->id();
  op.timestamp = t1;
  op.command = "hello";
  auto dup = std::make_shared<pbft::ClientRequestMsg>();
  dup->op = op;
  dup->client_sig = c.keys.Sign(op.client, dup->ComputeDigest());
  SeqNum before = c.engine(1).last_executed();
  c.client->Send(c.members[1], dup);
  c.sim.RunFor(Seconds(2));
  EXPECT_TRUE(c.client->ResultOf(t1).empty());
  EXPECT_TRUE(c.client->IsComplete(t1));
  EXPECT_EQ(c.engine(1).last_executed(), before);  // no re-execution
}

// ------------------------------------------- trim-vs-view-change race

TEST(RetentionTest, TrimRacingViewChangeKeepsPreparedUncheckpointedOps) {
  pbft::PbftConfig cfg;
  cfg.checkpoint_interval = 4;
  cfg.request_timeout_us = Millis(400);
  PbftCluster c(4, 1, /*seed=*/17, /*one_way_us=*/1000, cfg);
  c.client->EnableRetry(c.members, Millis(900));
  c.client->SubmitLocalSequence(c.members[0], 10, "pre ");
  c.sim.RunFor(Seconds(8));
  ASSERT_EQ(c.client->completed(), 10u);

  // Kill the primary mid-stream. Ops prepared above the stable checkpoint
  // have not been trimmed (trimming stops at the low-water mark), so the
  // new view re-proposes them from the surviving prepared proofs and the
  // whole workload still completes exactly once.
  c.sim.faults().Crash(c.members[0]);
  c.client->SubmitLocalSequence(c.members[1], 10, "post ");
  c.sim.RunFor(Seconds(30));
  EXPECT_EQ(c.client->completed(), 20u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(c.engine(i).view(), 1u) << "replica " << i;
    EXPECT_EQ(c.engine(i).last_executed(), c.engine(1).last_executed())
        << "replica " << i;
  }
  EXPECT_GE(c.sim.counters().Get(obs::CounterId::kPbftLogTrims), 1u);
}

// ------------------------------------------------ trim-vs-rejoin races

struct RetentionFixture {
  explicit RetentionFixture(SeqNum checkpoint_interval, std::uint64_t seed = 1)
      : sys(seed, sim::LatencyModel::PaperGeoMatrix()) {
    for (std::size_t z = 0; z < 3; ++z) {
      sys.AddZone(0, static_cast<RegionId>(z), 1, 4);
    }
    NodeConfig cfg;
    cfg.pbft.request_timeout_us = Millis(400);
    cfg.pbft.checkpoint_interval = checkpoint_interval;
    cfg.sync.retry_timeout_us = Millis(1500);
    cfg.sync.response_query_timeout_us = Millis(800);
    cfg.sync.relay_watch_timeout_us = Millis(1200);
    sys.Finalize(cfg,
                 [](ZoneId) { return std::make_unique<BankStateMachine>(); });
    client = std::make_unique<testutil::TestClient>(&sys.keys(), 1);
    sys.sim().Register(client.get(), 0);
    sys.BootstrapClient(client->id(), 0, [](ClientId id) {
      return storage::KvStore::Map{
          {BankStateMachine::AccountKey(id), "1000"}};
    });
    client->EnableRetry(sys.topology().zone(0).members, Millis(900));
  }

  std::vector<sim::InvariantViolation> CheckInvariants() {
    sim::InvariantChecker::Options opt;
    opt.balance_of = [](const core::ZoneStateMachine& app, ClientId c) {
      return static_cast<const BankStateMachine&>(app).BalanceOf(c);
    };
    opt.total_balance = [](const core::ZoneStateMachine& app) {
      return static_cast<const BankStateMachine&>(app).TotalBalance();
    };
    return sim::InvariantChecker(std::move(opt)).Check(sys);
  }

  static std::string Describe(const std::vector<sim::InvariantViolation>& v) {
    std::string out;
    for (const auto& x : v) out += x.invariant + ": " + x.detail + "\n";
    return out;
  }

  ZiziphusSystem sys;
  std::unique_ptr<testutil::TestClient> client;
};

TEST(RetentionRejoinTest, AmnesiacRequestingTrimmedSeqConvergesViaSnapshot) {
  // Tight checkpoints: everything the victim misses is trimmed from its
  // peers' logs before it rejoins, so its delta anchor is below every
  // responder's low-water mark and the snapshot fallback must kick in.
  RetentionFixture fx(/*checkpoint_interval=*/4);
  NodeId primary = fx.sys.PrimaryOf(0)->id();
  NodeId victim = fx.sys.topology().zone(0).members[3];
  auto t1 = fx.client->SubmitLocal(primary, "DEP 1");
  fx.sys.sim().RunFor(Seconds(1));
  ASSERT_TRUE(fx.client->IsComplete(t1));

  fx.sys.sim().CrashAmnesia(victim);
  fx.client->SubmitLocalSequence(primary, 12, "DEP ");
  fx.sys.sim().RunFor(Seconds(8));
  ASSERT_EQ(fx.client->completed(), 13u);
  EXPECT_GT(fx.sys.node(primary)->pbft().stable_seq(), 0u);

  fx.sys.sim().RecoverAmnesia(victim);
  fx.sys.sim().RunFor(Seconds(10));
  core::ZiziphusNode* v = fx.sys.node(victim);
  EXPECT_EQ(v->recoveries(), 1u);
  EXPECT_EQ(v->pbft().last_executed(),
            fx.sys.node(primary)->pbft().last_executed());
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kPbftFullTransfers),
            1u);
  auto viol = fx.CheckInvariants();
  EXPECT_TRUE(viol.empty()) << RetentionFixture::Describe(viol);
}

TEST(RetentionRejoinTest, AmnesiacWithLiveAnchorCatchesUpViaDelta) {
  // Wide checkpoints: nothing is trimmed during the short outage, so the
  // victim's WAL-restored seq is a valid delta anchor and the responder
  // ships only the missed batches.
  RetentionFixture fx(/*checkpoint_interval=*/128);
  NodeId primary = fx.sys.PrimaryOf(0)->id();
  NodeId victim = fx.sys.topology().zone(0).members[3];
  auto t1 = fx.client->SubmitLocal(primary, "DEP 1");
  fx.sys.sim().RunFor(Seconds(1));
  ASSERT_TRUE(fx.client->IsComplete(t1));

  fx.sys.sim().CrashAmnesia(victim);
  fx.client->SubmitLocalSequence(primary, 6, "DEP ");
  fx.sys.sim().RunFor(Seconds(5));
  ASSERT_EQ(fx.client->completed(), 7u);

  fx.sys.sim().RecoverAmnesia(victim);
  fx.sys.sim().RunFor(Seconds(10));
  core::ZiziphusNode* v = fx.sys.node(victim);
  EXPECT_EQ(v->recoveries(), 1u);
  EXPECT_EQ(v->pbft().last_executed(),
            fx.sys.node(primary)->pbft().last_executed());
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kPbftDeltaTransfers),
            1u);
  auto viol = fx.CheckInvariants();
  EXPECT_TRUE(viol.empty()) << RetentionFixture::Describe(viol);
}

// ----------------------------------------------------------- soak smoke

SoakOptions ShortSoak() {
  SoakOptions o;
  o.schedule.horizon = Seconds(12);
  o.schedule.wave_period = Seconds(4);
  o.schedule.flash_crowds = 1;
  o.schedule.flash_length = Millis(800);
  o.schedule.regional_outages = 0;
  o.schedule.amnesia_crashes = 1;
  o.sample_period = Millis(500);
  o.base_think = Millis(250);
  o.pairs_per_zone = 1;
  o.migrators = 1;
  o.migrations_per_client = 3;
  o.migrator_records = 100;
  o.checkpoint_interval = 16;
  // One-deep decided window so even the smoke's three migrations push
  // ballot state past it and compaction runs.
  o.sync_keep_window = 1;
  return o;
}

TEST(SoakSmokeTest, TrimmedRunHoldsMemoryBoundAndDrains) {
  SoakReport on = RunZiziphusSoak(ShortSoak());
  EXPECT_TRUE(on.ok()) << on.Summary();
  EXPECT_GE(CounterOf(on.counters, "pbft.log_trims"), 1u);
  EXPECT_GE(CounterOf(on.counters, "pbft.reply_cache_evictions"), 1u);
  EXPECT_GE(CounterOf(on.counters, "sync.requests_compacted"), 1u);
  EXPECT_GE(CounterOf(on.counters, "mig.chunked_transfers"), 1u);
  ASSERT_FALSE(on.samples.empty());
  EXPECT_LE(on.final_live_bytes, on.high_water_live_bytes);

  SoakOptions control = ShortSoak();
  control.trim_at_checkpoint = false;
  control.compact_sync = false;
  SoakReport off = RunZiziphusSoak(control);
  EXPECT_TRUE(off.ok()) << off.Summary();
  EXPECT_EQ(CounterOf(off.counters, "pbft.log_trims"), 0u);
  // Identical schedule, but the untrimmed arm ends with strictly more
  // retained bytes than the trimmed arm's worst moment ever reached.
  EXPECT_LT(on.final_live_bytes, off.final_live_bytes);
  EXPECT_LT(on.high_water_live_bytes, off.high_water_live_bytes);
}

TEST(SoakSmokeTest, SameSeedIsDeterministicAcrossQueueKinds) {
  SoakOptions opt = ShortSoak();
  opt.queue = sim::EventQueueKind::kCalendar;
  SoakReport cal = RunZiziphusSoak(opt);
  EXPECT_TRUE(cal.ok()) << cal.Summary();
  opt.queue = sim::EventQueueKind::kBinaryHeap;
  SoakReport heap = RunZiziphusSoak(opt);
  EXPECT_EQ(cal.fingerprint, heap.fingerprint);
  EXPECT_EQ(cal.counters, heap.counters);
  EXPECT_EQ(cal.obs_json, heap.obs_json);
}

TEST(RejoinProbeTest, DeltaTransferBeatsSnapshotOnLargeState) {
  RejoinProbeOptions opt;
  opt.records = 8192;
  opt.warmup = Millis(800);
  opt.outage = Millis(800);
  opt.delta_state_transfer = true;
  RejoinProbeResult delta = RunRejoinProbe(opt);
  opt.delta_state_transfer = false;
  RejoinProbeResult full = RunRejoinProbe(opt);

  ASSERT_TRUE(delta.caught_up);
  ASSERT_TRUE(full.caught_up);
  EXPECT_GE(delta.delta_transfers, 1u);
  EXPECT_EQ(delta.full_transfers, 0u);
  EXPECT_GE(full.full_transfers, 1u);
  // The delta ships only the outage's batches; the snapshot drags the
  // whole 8192-record store across the wire.
  EXPECT_LT(delta.transfer_bytes, full.transfer_bytes);
  EXPECT_LT(delta.time_to_rejoin, full.time_to_rejoin);
}

}  // namespace
}  // namespace ziziphus
