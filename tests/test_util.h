#ifndef ZIZIPHUS_TESTS_TEST_UTIL_H_
#define ZIZIPHUS_TESTS_TEST_UTIL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/pbft_process.h"
#include "core/messages.h"
#include "core/system.h"
#include "pbft/messages.h"
#include "sim/simulation.h"

namespace ziziphus::testutil {

/// Scripted test client: submits operations on demand and tracks f+1
/// matching completions for local requests and migrations.
class TestClient : public sim::Process {
 public:
  TestClient(const crypto::KeyRegistry* keys, std::size_t f)
      : keys_(keys), f_(f) {}

  /// Enables the PBFT client retransmission rule: if a request is not
  /// acknowledged within `timeout`, multicast it to every group member.
  void EnableRetry(std::vector<NodeId> group, Duration timeout) {
    retry_group_ = std::move(group);
    retry_timeout_ = timeout;
  }

  /// Sends a signed client request to `target`.
  RequestTimestamp SubmitLocal(NodeId target, const std::string& command) {
    pbft::Operation op;
    op.client = id();
    op.timestamp = next_ts_++;
    op.command = command;
    auto req = std::make_shared<pbft::ClientRequestMsg>();
    req->op = op;
    req->client_sig = keys_->Sign(id(), req->ComputeDigest());
    Send(target, req);
    if (!retry_group_.empty()) {
      outstanding_[op.timestamp] = req;
      SetTimer(retry_timeout_, op.timestamp);
    }
    return op.timestamp;
  }

  /// Sends a migration request (or global command when `command` set;
  /// cross-zone transaction when `cross_zone` additionally set).
  RequestTimestamp SubmitGlobal(NodeId target, ZoneId source, ZoneId dest,
                                const std::string& command = "",
                                bool cross_zone = false) {
    core::MigrationOp op;
    op.client = id();
    op.timestamp = next_ts_++;
    op.source = source;
    op.destination = dest;
    op.command = command;
    op.cross_zone = cross_zone;
    auto req = std::make_shared<core::MigrationRequestMsg>();
    req->op = op;
    req->client_sig = keys_->Sign(id(), req->digest());
    Send(target, req);
    if (!retry_group_.empty()) {
      outstanding_[op.timestamp] = req;
      global_outstanding_.insert(op.timestamp);
      SetTimer(retry_timeout_, op.timestamp);
    }
    return op.timestamp;
  }

  /// Queues `n` local commands and submits them one at a time, each after
  /// the previous one completes (the PBFT client model: one outstanding
  /// request per client, monotonically increasing timestamps).
  void SubmitLocalSequence(NodeId target, std::size_t n,
                           const std::string& prefix) {
    seq_target_ = target;
    for (std::size_t i = 0; i < n; ++i) {
      queued_.push_back(prefix + std::to_string(i));
    }
    PumpQueue();
  }

  /// Number of local requests acknowledged by f+1 distinct replicas.
  std::size_t completed() const { return completed_.size(); }
  bool IsComplete(RequestTimestamp ts) const {
    return completed_.count(ts) > 0;
  }
  /// f+1 matching MIGRATION-DONE replies observed.
  bool MigrationDone(RequestTimestamp ts) const {
    return done_.count(ts) > 0;
  }
  /// f+1 matching first-sub-transaction replies observed.
  bool Synced(RequestTimestamp ts) const { return synced_.count(ts) > 0; }

  const std::string& ResultOf(RequestTimestamp ts) const {
    static const std::string kEmpty;
    auto it = results_.find(ts);
    return it == results_.end() ? kEmpty : it->second;
  }

  using sim::Process::Send;

 protected:
  void OnMessage(const sim::MessagePtr& msg) override {
    switch (msg->type()) {
      case pbft::kClientReply: {
        auto r = std::static_pointer_cast<const pbft::ClientReplyMsg>(msg);
        auto& votes = reply_votes_[r->timestamp];
        votes.insert(r->replica);
        results_[r->timestamp] = r->result;
        if (votes.size() >= f_ + 1 && completed_.insert(r->timestamp).second) {
          PumpQueue();
        }
        break;
      }
      case core::kMigrationReply: {
        auto r = std::static_pointer_cast<const core::MigrationReplyMsg>(msg);
        auto& votes = sync_votes_[r->timestamp];
        votes.insert(r->replica);
        results_[r->timestamp] = r->result;
        if (votes.size() >= f_ + 1) synced_.insert(r->timestamp);
        break;
      }
      case core::kMigrationDone: {
        auto r = std::static_pointer_cast<const core::MigrationReplyMsg>(msg);
        auto& votes = done_votes_[r->timestamp];
        votes.insert(r->replica);
        if (votes.size() >= f_ + 1) done_.insert(r->timestamp);
        break;
      }
      default:
        break;
    }
  }

  void OnTimer(std::uint64_t ts) override {
    auto it = outstanding_.find(ts);
    if (it == outstanding_.end()) return;
    bool is_global = global_outstanding_.count(ts) > 0;
    bool finished = is_global ? done_.count(ts) > 0 : completed_.count(ts) > 0;
    if (finished) {
      outstanding_.erase(it);
      global_outstanding_.erase(ts);
      return;
    }
    Multicast(retry_group_, it->second);
    SetTimer(retry_timeout_, ts);
  }

 private:
  void PumpQueue() {
    if (queued_.empty()) return;
    std::string cmd = queued_.front();
    queued_.erase(queued_.begin());
    SubmitLocal(seq_target_, cmd);
  }

  const crypto::KeyRegistry* keys_;
  std::size_t f_;
  std::vector<std::string> queued_;
  NodeId seq_target_ = kInvalidNode;
  std::vector<NodeId> retry_group_;
  Duration retry_timeout_ = Seconds(1);
  std::map<RequestTimestamp, sim::MessagePtr> outstanding_;
  std::set<RequestTimestamp> global_outstanding_;
  RequestTimestamp next_ts_ = 1;
  std::map<RequestTimestamp, std::set<NodeId>> reply_votes_;
  std::map<RequestTimestamp, std::set<NodeId>> sync_votes_;
  std::map<RequestTimestamp, std::set<NodeId>> done_votes_;
  std::set<RequestTimestamp> completed_;
  std::set<RequestTimestamp> synced_;
  std::set<RequestTimestamp> done_;
  std::map<RequestTimestamp, std::string> results_;
};

/// A self-contained PBFT group over a uniform-latency network.
struct PbftCluster {
  explicit PbftCluster(std::size_t n, std::size_t f, std::uint64_t seed = 1,
                       Duration one_way_us = 1000,
                       pbft::PbftConfig base = {})
      : keys(seed ^ 0x5eedc0deULL),
        sim(seed, sim::LatencyModel::Uniform(1, one_way_us)) {
    for (std::size_t i = 0; i < n; ++i) {
      auto rep = std::make_unique<baselines::PbftReplicaProcess>();
      members.push_back(sim.Register(rep.get(), 0));
      replicas.push_back(std::move(rep));
    }
    base.members = members;
    base.f = f;
    for (auto& rep : replicas) {
      rep->Init(&keys, base, std::make_unique<pbft::EchoStateMachine>());
    }
    client = std::make_unique<TestClient>(&keys, f);
    sim.Register(client.get(), 0);
  }

  pbft::EchoStateMachine& app(std::size_t i) {
    return static_cast<pbft::EchoStateMachine&>(replicas[i]->app());
  }
  pbft::PbftEngine& engine(std::size_t i) { return replicas[i]->engine(); }

  crypto::KeyRegistry keys;
  sim::Simulation sim;
  std::vector<NodeId> members;
  std::vector<std::unique_ptr<baselines::PbftReplicaProcess>> replicas;
  std::unique_ptr<TestClient> client;
};

}  // namespace ziziphus::testutil

#endif  // ZIZIPHUS_TESTS_TEST_UTIL_H_
