#include <memory>

#include "app/bank.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace ziziphus {
namespace {

using app::BankStateMachine;
using core::NodeConfig;
using core::ZiziphusSystem;

/// Two clusters of three zones each (Section VI / Figure 3 topology).
struct ClusterFixture {
  explicit ClusterFixture(std::uint64_t seed = 1,
                          std::size_t clusters = 2,
                          std::size_t zones_per_cluster = 3)
      : sys(seed, sim::LatencyModel::PaperGeoMatrix()) {
    static const RegionId regions[] = {sim::kCalifornia, sim::kSydney,
                                       sim::kParis, sim::kLondon,
                                       sim::kTokyo};
    for (std::size_t c = 0; c < clusters; ++c) {
      for (std::size_t z = 0; z < zones_per_cluster; ++z) {
        sys.AddZone(static_cast<ClusterId>(c), regions[c % 5], 1, 4);
      }
    }
    NodeConfig cfg;
    cfg.pbft.request_timeout_us = Seconds(2);
    sys.Finalize(cfg,
                 [](ZoneId) { return std::make_unique<BankStateMachine>(); });
    client = std::make_unique<testutil::TestClient>(&sys.keys(), 1);
    sys.sim().Register(client.get(), 0);
  }

  BankStateMachine& bank(ZoneId z, std::size_t member) {
    return static_cast<BankStateMachine&>(sys.Member(z, member)->app());
  }
  void Bootstrap(ClientId c, ZoneId home, std::int64_t balance = 1000) {
    sys.BootstrapClient(c, home, [balance](ClientId id) {
      return storage::KvStore::Map{
          {BankStateMachine::AccountKey(id), std::to_string(balance)}};
    });
  }

  ZiziphusSystem sys;
  std::unique_ptr<testutil::TestClient> client;
};

TEST(CrossClusterTest, IntraClusterMigrationStaysLocal) {
  ClusterFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);

  // Zone 0 -> zone 1 (both in cluster 0): the other cluster must see no
  // meta-data change (regional meta-data, Section VI).
  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(3));
  ASSERT_TRUE(fx.client->MigrationDone(ts));

  for (const auto& node : fx.sys.nodes()) {
    if (node->zone() < 3) {
      EXPECT_EQ(node->metadata().HomeOf(c), 1u);
    } else {
      // Other cluster never learned about this client's move.
      EXPECT_EQ(node->metadata().MigrationsOf(c), 0u);
    }
  }
  EXPECT_EQ(fx.sys.sim().counters().Get(obs::CounterId::kSyncCrossProposesSent), 0u);
}

TEST(CrossClusterTest, CrossClusterMigrationCommitsOnBothClusters) {
  ClusterFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);  // home in cluster 0 (zone 0)

  // Migrate to zone 4 (cluster 1): destination zone initiates; the source
  // zone leads the source cluster's leg.
  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(4)->id(), 0, 4);
  fx.sys.sim().RunFor(Seconds(5));

  EXPECT_TRUE(fx.client->Synced(ts));
  EXPECT_TRUE(fx.client->MigrationDone(ts));
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kSyncCrossProposesSent), 1u);
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kSyncPreparedSent), 1u);

  // Both clusters executed the transaction on their regional meta-data.
  for (const auto& node : fx.sys.nodes()) {
    EXPECT_EQ(node->metadata().HomeOf(c), 4u) << "node " << node->self();
  }
  // Records landed in the destination zone.
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(fx.bank(4, m).BalanceOf(c), 1000);
    EXPECT_TRUE(fx.sys.Member(4, m)->locks().IsLocked(c));
  }
  // Source zone is unlocked.
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_FALSE(fx.sys.Member(0, m)->locks().IsLocked(c));
  }
}

TEST(CrossClusterTest, LocalServiceResumesInNewCluster) {
  ClusterFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 1);
  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(5)->id(), 1, 5);
  fx.sys.sim().RunFor(Seconds(5));
  ASSERT_TRUE(fx.client->MigrationDone(ts));

  auto dep = fx.client->SubmitLocal(fx.sys.PrimaryOf(5)->id(), "DEP 50");
  fx.sys.sim().RunFor(Seconds(2));
  EXPECT_TRUE(fx.client->IsComplete(dep));
  EXPECT_EQ(fx.bank(5, 0).BalanceOf(c), 1050);
}

TEST(CrossClusterTest, ManyClustersIndependentTraffic) {
  ClusterFixture fx(/*seed=*/3, /*clusters=*/4);
  // One intra-cluster migration per cluster, concurrently; plus one
  // cross-cluster migration.
  std::vector<std::unique_ptr<testutil::TestClient>> clients;
  std::vector<RequestTimestamp> tss;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(
        std::make_unique<testutil::TestClient>(&fx.sys.keys(), 1));
    fx.sys.sim().Register(clients.back().get(), 0);
    ZoneId home = static_cast<ZoneId>(3 * i);
    fx.Bootstrap(clients.back()->id(), home);
    ZoneId dest = static_cast<ZoneId>(3 * i + 1);
    tss.push_back(clients[i]->SubmitGlobal(
        fx.sys.PrimaryOf(home)->id(), home, dest));
  }
  fx.Bootstrap(fx.client->id(), 0);
  auto cross_ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(9)->id(), 0, 9);
  fx.sys.sim().RunFor(Seconds(6));

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(clients[i]->MigrationDone(tss[i])) << "cluster " << i;
  }
  EXPECT_TRUE(fx.client->MigrationDone(cross_ts));
  // Clusters 1 and 2 never saw the cross-cluster client (it moved between
  // clusters 0 and 3).
  for (const auto& node : fx.sys.nodes()) {
    ClusterId cl = fx.sys.topology().zone(node->zone()).cluster;
    if (cl == 0 || cl == 3) {
      EXPECT_EQ(node->metadata().HomeOf(fx.client->id()), 9u);
    }
  }
}

TEST(CrossClusterTest, SequentialCrossClusterRoundTrip) {
  ClusterFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  auto t1 = fx.client->SubmitGlobal(fx.sys.PrimaryOf(3)->id(), 0, 3);
  fx.sys.sim().RunFor(Seconds(5));
  ASSERT_TRUE(fx.client->MigrationDone(t1));
  auto t2 = fx.client->SubmitGlobal(fx.sys.PrimaryOf(1)->id(), 3, 1);
  fx.sys.sim().RunFor(Seconds(5));
  ASSERT_TRUE(fx.client->MigrationDone(t2));
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(fx.bank(1, m).BalanceOf(c), 1000);
  }
}

}  // namespace
}  // namespace ziziphus
