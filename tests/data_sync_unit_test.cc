// Focused data-synchronization behaviours not covered by the end-to-end
// suites: batching, duplicate suppression, lazy/checkpoint interplay and
// non-stable-mode concurrency.

#include <memory>

#include "app/bank.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace ziziphus {
namespace {

using app::BankStateMachine;
using core::NodeConfig;

struct SyncFixture {
  explicit SyncFixture(NodeConfig cfg = {}, std::uint64_t seed = 1)
      : sys(seed, sim::LatencyModel::PaperGeoMatrix()) {
    for (int z = 0; z < 3; ++z) sys.AddZone(0, z, 1, 4);
    cfg.pbft.request_timeout_us = Seconds(3);
    sys.Finalize(cfg,
                 [](ZoneId) { return std::make_unique<BankStateMachine>(); });
  }

  std::unique_ptr<testutil::TestClient> NewClient(ZoneId home) {
    auto c = std::make_unique<testutil::TestClient>(&sys.keys(), 1);
    sys.sim().Register(c.get(), 0);
    sys.BootstrapClient(c->id(), home, [](ClientId id) {
      return storage::KvStore::Map{
          {BankStateMachine::AccountKey(id), "1000"}};
    });
    return c;
  }

  core::ZiziphusSystem sys;
};

TEST(DataSyncUnitTest, ConcurrentMigrationsShareBatches) {
  NodeConfig cfg;
  cfg.sync.batch_max = 16;
  cfg.sync.batch_timeout_us = Millis(5);
  SyncFixture fx(cfg);
  std::vector<std::unique_ptr<testutil::TestClient>> clients;
  for (int i = 0; i < 12; ++i) clients.push_back(fx.NewClient(0));
  for (auto& c : clients) {
    c->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  }
  fx.sys.sim().RunFor(Seconds(4));
  for (auto& c : clients) {
    EXPECT_EQ(c->MigrationDone(1), true) << c->id();
  }
  // 12 concurrent requests rode far fewer data-sync instances.
  std::uint64_t batches = fx.sys.sim().counters().Get(obs::CounterId::kSyncBatchesFormed);
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, 4u);
}

TEST(DataSyncUnitTest, BatchSizeOneDisablesBatching) {
  NodeConfig cfg;
  cfg.sync.batch_max = 1;
  SyncFixture fx(cfg);
  std::vector<std::unique_ptr<testutil::TestClient>> clients;
  for (int i = 0; i < 5; ++i) clients.push_back(fx.NewClient(0));
  for (auto& c : clients) c->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(4));
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kSyncBatchesFormed), 5u);
  for (auto& c : clients) EXPECT_TRUE(c->MigrationDone(1));
}

TEST(DataSyncUnitTest, DuplicateRequestLedOnce) {
  SyncFixture fx;
  auto c = fx.NewClient(0);
  core::MigrationOp op;
  op.client = c->id();
  op.timestamp = 1;
  op.source = 0;
  op.destination = 1;
  auto req = std::make_shared<core::MigrationRequestMsg>();
  req->op = op;
  req->client_sig = fx.sys.keys().Sign(c->id(), req->digest());
  NodeId primary = fx.sys.PrimaryOf(0)->id();
  c->Send(primary, req);
  c->Send(primary, req);  // duplicate in the same batch window
  fx.sys.sim().RunFor(Millis(200));
  c->Send(primary, req);  // duplicate after the batch formed
  fx.sys.sim().RunFor(Seconds(3));
  // Executed once on every node.
  for (const auto& node : fx.sys.nodes()) {
    EXPECT_EQ(node->metadata().MigrationsOf(c->id()), 1u);
  }
}

TEST(DataSyncUnitTest, NonStableConcurrentLeadersAllCommit) {
  NodeConfig cfg;
  cfg.sync.stable_leader = false;
  SyncFixture fx(cfg);
  // Different destination zones => different per-request leaders running
  // elections concurrently; per-instance promise bounds avoid collisions.
  auto c01 = fx.NewClient(0);
  auto c12 = fx.NewClient(1);
  auto c20 = fx.NewClient(2);
  auto t1 = c01->SubmitGlobal(fx.sys.PrimaryOf(1)->id(), 0, 1);
  auto t2 = c12->SubmitGlobal(fx.sys.PrimaryOf(2)->id(), 1, 2);
  auto t3 = c20->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 2, 0);
  fx.sys.sim().RunFor(Seconds(5));
  EXPECT_TRUE(c01->MigrationDone(t1));
  EXPECT_TRUE(c12->MigrationDone(t2));
  EXPECT_TRUE(c20->MigrationDone(t3));
  std::uint64_t digest = fx.sys.nodes()[0]->metadata().StateDigest();
  for (const auto& node : fx.sys.nodes()) {
    EXPECT_EQ(node->metadata().StateDigest(), digest);
  }
}

TEST(DataSyncUnitTest, MixedLocalAndGlobalTrafficInterleaves) {
  SyncFixture fx;
  auto mover = fx.NewClient(0);
  auto stayer = fx.NewClient(0);
  auto mig = mover->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 2);
  // The stayer's local traffic proceeds while the migration is in flight.
  stayer->SubmitLocalSequence(fx.sys.PrimaryOf(0)->id(), 10, "DEP ");
  fx.sys.sim().RunFor(Seconds(4));
  EXPECT_TRUE(mover->MigrationDone(mig));
  EXPECT_EQ(stayer->completed(), 10u);
  auto& bank0 =
      static_cast<BankStateMachine&>(fx.sys.Member(0, 0)->app());
  // "DEP 0" .. "DEP 9" deposit 45 in total.
  EXPECT_EQ(bank0.BalanceOf(stayer->id()), 1045);
}

TEST(DataSyncUnitTest, CommitCountersConsistent) {
  SyncFixture fx;
  auto c = fx.NewClient(0);
  auto ts = c->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(3));
  ASSERT_TRUE(c->MigrationDone(ts));
  // Every node committed and executed exactly one instance.
  for (const auto& node : fx.sys.nodes()) {
    EXPECT_EQ(node->sync().committed_count(), 1u);
    EXPECT_EQ(node->sync().executed_count(), 1u);
    EXPECT_NE(node->sync().last_executed_ballot(0), kNullBallot);
  }
}

TEST(DataSyncUnitTest, ForgedClientSignatureNeverAdmitted) {
  SyncFixture fx;
  auto c = fx.NewClient(0);
  core::MigrationOp op;
  op.client = c->id();
  op.timestamp = 1;
  op.source = 0;
  op.destination = 1;
  auto req = std::make_shared<core::MigrationRequestMsg>();
  req->op = op;
  req->client_sig = crypto::Signature{c->id(), 0xdead};
  c->Send(fx.sys.PrimaryOf(0)->id(), req);
  fx.sys.sim().RunFor(Seconds(2));
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kSyncBadClientSig), 1u);
  for (const auto& node : fx.sys.nodes()) {
    EXPECT_EQ(node->metadata().MigrationsOf(c->id()), 0u);
  }
}

TEST(DataSyncUnitTest, MalformedMigrationDropped) {
  SyncFixture fx;
  auto c = fx.NewClient(0);
  // source == destination is malformed.
  auto ts = c->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 1, 1);
  fx.sys.sim().RunFor(Seconds(2));
  EXPECT_FALSE(c->Synced(ts));
  EXPECT_EQ(fx.sys.sim().counters().Get(obs::CounterId::kSyncRequestsLed), 0u);
}

}  // namespace
}  // namespace ziziphus
