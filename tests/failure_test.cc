#include <memory>

#include "app/bank.h"
#include "core/system.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace ziziphus {
namespace {

using app::BankStateMachine;
using core::NodeConfig;
using core::ZiziphusSystem;

struct FailFixture {
  explicit FailFixture(std::size_t zones = 3, NodeConfig cfg = FastConfig(),
                       std::uint64_t seed = 1)
      : sys(seed, sim::LatencyModel::PaperGeoMatrix()) {
    for (std::size_t z = 0; z < zones; ++z) {
      sys.AddZone(0, static_cast<RegionId>(z % 7), 1, 4);
    }
    sys.Finalize(cfg,
                 [](ZoneId) { return std::make_unique<BankStateMachine>(); });
    client = std::make_unique<testutil::TestClient>(&sys.keys(), 1);
    sys.sim().Register(client.get(), 0);
  }

  static NodeConfig FastConfig() {
    NodeConfig cfg;
    cfg.pbft.request_timeout_us = Millis(400);
    cfg.sync.retry_timeout_us = Millis(1500);
    cfg.sync.response_query_timeout_us = Millis(800);
    cfg.sync.relay_watch_timeout_us = Millis(1200);
    return cfg;
  }

  void Bootstrap(ClientId c, ZoneId home) {
    sys.BootstrapClient(c, home, [](ClientId id) {
      return storage::KvStore::Map{
          {BankStateMachine::AccountKey(id), "1000"}};
    });
  }
  BankStateMachine& bank(ZoneId z, std::size_t member) {
    return static_cast<BankStateMachine&>(sys.Member(z, member)->app());
  }

  ZiziphusSystem sys;
  std::unique_ptr<testutil::TestClient> client;
};

TEST(FailureTest, BackupCrashPerZoneDoesNotBlockAnything) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  // One crashed backup in each zone (Figure 6 setup).
  for (ZoneId z = 0; z < 3; ++z) {
    fx.sys.sim().faults().Crash(fx.sys.topology().zone(z).members[3]);
  }
  auto local = fx.client->SubmitLocal(fx.sys.PrimaryOf(0)->id(), "DEP 1");
  fx.sys.sim().RunFor(Seconds(1));
  EXPECT_TRUE(fx.client->IsComplete(local));

  auto mig = fx.client->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(3));
  EXPECT_TRUE(fx.client->MigrationDone(mig));
}

TEST(FailureTest, LocalPrimaryCrashRecoversViaViewChange) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  // Crash zone 0's primary; client retries reach the backups, PBFT view
  // change elects member 1.
  fx.sys.sim().faults().Crash(fx.sys.topology().zone(0).members[0]);
  fx.client->EnableRetry(fx.sys.topology().zone(0).members, Millis(900));
  auto ts = fx.client->SubmitLocal(fx.sys.topology().zone(0).members[1],
                                   "DEP 7");
  fx.sys.sim().RunFor(Seconds(6));
  EXPECT_TRUE(fx.client->IsComplete(ts));
  EXPECT_EQ(fx.bank(0, 1).BalanceOf(c), 1007);
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kPbftNewViewsEntered), 1u);
}

TEST(FailureTest, GlobalPrimaryCrashMigrationStillCompletes) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 1);
  // The stable leader zone (zone 0) loses its primary before the request
  // arrives. Backups relay, suspect it (relay watch), a view change elects
  // a new primary which re-leads the migration (Section V-A).
  NodeId old_primary = fx.sys.PrimaryOf(0)->id();
  fx.sys.sim().faults().Crash(old_primary);
  // Client multicasts on timeout (Section V-A), reaching the live backups.
  fx.client->EnableRetry(fx.sys.topology().zone(0).members, Millis(1200));
  auto ts = fx.client->SubmitGlobal(fx.sys.topology().zone(0).members[1],
                                    /*source=*/1, /*dest=*/2);
  fx.sys.sim().RunFor(Seconds(10));
  EXPECT_TRUE(fx.client->MigrationDone(ts));
  for (const auto& node : fx.sys.nodes()) {
    if (node->self() == old_primary) continue;
    EXPECT_EQ(node->metadata().HomeOf(c), 2u) << "node " << node->self();
  }
}

TEST(FailureTest, WholeZoneFailureGlobalTransactionsSurvive) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  // Zone 2 dies entirely (natural disaster). Majority = 2 of 3 zones, so
  // global transactions between zones 0 and 1 still commit (Prop. 5.1).
  for (NodeId n : fx.sys.topology().zone(2).members) {
    fx.sys.sim().faults().Crash(n);
  }
  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(5));
  EXPECT_TRUE(fx.client->MigrationDone(ts));
  for (const auto& node : fx.sys.nodes()) {
    if (node->zone() == 2) continue;
    EXPECT_EQ(node->metadata().HomeOf(c), 1u);
  }
}

TEST(FailureTest, WholeZoneFailureLocalDataUnavailable) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 2);
  for (NodeId n : fx.sys.topology().zone(2).members) {
    fx.sys.sim().faults().Crash(n);
  }
  // The dead zone's client cannot be served anywhere (Prop. 5.4).
  auto ts = fx.client->SubmitLocal(fx.sys.topology().zone(2).members[0],
                                   "DEP 1");
  fx.sys.sim().RunFor(Seconds(2));
  EXPECT_FALSE(fx.client->IsComplete(ts));
  // Other zones reject it too: they do not hold the data (no lock).
  auto ts2 = fx.client->SubmitLocal(fx.sys.PrimaryOf(0)->id(), "DEP 1");
  fx.sys.sim().RunFor(Seconds(2));
  EXPECT_FALSE(fx.client->IsComplete(ts2));
}

TEST(FailureTest, LazySyncReplicatesZoneStateElsewhere) {
  NodeConfig cfg = FailFixture::FastConfig();
  cfg.pbft.checkpoint_interval = 4;
  cfg.pbft.batch_max = 1;
  cfg.pbft.batch_timeout_us = 100;
  FailFixture fx(3, cfg);
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  // Enough local traffic in zone 0 to cross a checkpoint boundary.
  fx.client->SubmitLocalSequence(fx.sys.PrimaryOf(0)->id(), 8, "DEP 1 #");
  fx.sys.sim().RunFor(Seconds(4));
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kLazyCheckpointsShared), 1u);
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kLazyCheckpointsInstalled), 1u);
  // Nodes of zone 1 hold zone 0's stable snapshot.
  const storage::Checkpoint* cp =
      fx.sys.Member(1, 0)->lazy_sync().remote_checkpoints().Latest(0);
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->seq, 4u);
  EXPECT_FALSE(cp->snapshot.empty());
}

TEST(FailureTest, ResponseQueryRecoversLostCommit) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  // Cut the links from the leader zone's nodes to one follower-zone node
  // *after* accept: simulate by dropping all messages into zone 1's primary
  // briefly. Simpler deterministic variant: raise loss and verify the
  // protocol still completes thanks to retransmissions + response queries.
  fx.sys.sim().faults().set_loss_probability(0.05);
  fx.client->EnableRetry(fx.sys.topology().zone(0).members, Millis(1500));
  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(12));
  EXPECT_TRUE(fx.client->MigrationDone(ts));
}

TEST(FailureTest, ByzantineSourcePrimaryCannotForgeMigratedState) {
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);

  // Corrupt the "primary's" view of the client state on one node only: the
  // other source-zone nodes refuse to endorse mismatched records, so the
  // forged state never reaches the destination with a valid certificate.
  core::ZiziphusNode* src_primary = fx.sys.PrimaryOf(0);
  static_cast<BankStateMachine&>(src_primary->app())
      .OpenAccount(c, 999999);  // tampered balance

  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(5));

  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kMigStateMismatchRejected), 1u);
  // The forged balance must not appear at the destination.
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_NE(fx.bank(1, m).BalanceOf(c), 999999);
  }
}

TEST(FailureTest, ChainSkipGuardPreventsWedge) {
  // A commit whose predecessor never commits (leader crashed mid-pipeline)
  // eventually executes via the chain-skip guard rather than wedging.
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 0);
  auto ts = fx.client->SubmitGlobal(fx.sys.PrimaryOf(0)->id(), 0, 1);
  fx.sys.sim().RunFor(Seconds(3));
  ASSERT_TRUE(fx.client->MigrationDone(ts));
  // (The guard itself is exercised indirectly; this asserts no regression
  // in the normal path and that the counter stays clean.)
  EXPECT_EQ(fx.sys.sim().counters().Get(obs::CounterId::kSyncChainSkip), 0u);
}

TEST(FailureTest, ResponseQueriesSuspectUnresponsiveGlobalPrimary) {
  // Section V-A response-query path with the initiator zone's primary
  // effectively partitioned: the leader-zone primary can send (Accepts go
  // out, the global transaction reaches the accepted phase everywhere) but
  // never hears back, so it cannot assemble the commit. Follower-zone
  // nodes' commit-wait timers fire and they multicast RESPONSE-QUERY to the
  // initiator zone; once 2f+1 distinct queriers accumulate, the leader
  // zone's backups suspect their own primary, a view change elects a new
  // one, and the retried global transaction commits in the new view.
  FailFixture fx;
  ClientId c = fx.client->id();
  fx.Bootstrap(c, 1);
  NodeId gp = fx.sys.PrimaryOf(0)->id();
  for (ZoneId z = 1; z <= 2; ++z) {
    for (NodeId n : fx.sys.topology().zone(z).members) {
      fx.sys.sim().faults().CutOneWay(n, gp);
    }
  }
  fx.client->EnableRetry(fx.sys.topology().zone(0).members, Millis(1500));
  auto ts = fx.client->SubmitGlobal(gp, 1, 2);
  fx.sys.sim().RunFor(Seconds(20));

  EXPECT_TRUE(fx.client->MigrationDone(ts));
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kSyncResponseQueriesSent), 1u);
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kSyncPrimarySuspected), 1u);
  EXPECT_GE(fx.sys.sim().counters().Get(obs::CounterId::kPbftNewViewsEntered), 1u);
}

}  // namespace
}  // namespace ziziphus
