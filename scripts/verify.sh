#!/usr/bin/env bash
# Full verification: tier-1 build + ctest, the same suite under
# ASan+UBSan, and --require/--min-ratio gates over every committed
# BENCH_*.json at the repo root (so a stale or regressed committed
# export fails even if nobody re-ran the bench that wrote it).
#
# Usage: scripts/verify.sh [--skip-sanitize]
#
# Build trees: build/ (plain, also used for bench_schema_check) and
# build-asan/ (ZIZIPHUS_SANITIZE=address,undefined). Both are plain
# cmake trees — safe to delete, never committed.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown flag: $arg (want --skip-sanitize)" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

banner() { printf '\n=== %s ===\n' "$*"; }

# ---- 1. tier-1: plain build + full ctest -------------------------------
banner "tier-1 build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
banner "tier-1 ctest"
ctest --test-dir build --output-on-failure -j "$JOBS"

# ---- 2. the same suite, instrumented -----------------------------------
if [[ "$SKIP_SANITIZE" == 0 ]]; then
  banner "sanitizer build (build-asan/, ZIZIPHUS_SANITIZE=address,undefined)"
  cmake -B build-asan -S . -DZIZIPHUS_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$JOBS"
  banner "sanitizer ctest"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

# ---- 3. committed BENCH_*.json gates -----------------------------------
# Schema-validate every committed export, then re-assert each file's
# headline claim. The per-file gates mirror (and for files without a
# dedicated ctest, extend) bench_reads_committed / bench_consensus_committed.
CHECK=build/tests/bench_schema_check

banner "BENCH_fig5.json"
"$CHECK" BENCH_fig5.json \
  --require=ziziphus/zones:3:lat_p50_ms \
  --require=steward/zones:3:lat_p50_ms \
  --require=two-level-pbft/zones:3:lat_p50_ms \
  --require=flat-pbft/zones:3:lat_p50_ms

banner "BENCH_simperf.json"
"$CHECK" BENCH_simperf.json \
  --require=simperf/sched/zones:3:cal_events_per_sec \
  --require=simperf/sched/zones:3:heap_events_per_sec \
  --require=simperf/fig4/zones:3:cal_events_per_sec

banner "BENCH_soak.json"
"$CHECK" BENCH_soak.json \
  --require=soak/trim:on:plateau_ratio \
  --require=soak/trim:on:high_water_kb \
  --require=soak/trim:off:high_water_kb \
  --require=rejoin/records:512/delta:on:ttr_ms \
  --require=rejoin/records:512/delta:on:transfer_kb

banner "BENCH_reads.json"
"$CHECK" BENCH_reads.json \
  --require=reads:90/fast:reads_served \
  --require=reads:90/fast:reads_cert_verified \
  --require=reads:99/fast:reads_served \
  --require=all-txn:tput_ktps \
  "--min-ratio=reads:90/fast|reads:90/txn-path|tput_ktps|2.0"

banner "BENCH_consensus.json"
"$CHECK" BENCH_consensus.json \
  --require=consensus/stable/failures:0:lat_p50_ms \
  --require=consensus/stable/failures:1:lat_p50_ms \
  --require=consensus/rotating/failures:0:rotations \
  --require=consensus/rotating/failures:1:lat_p50_ms \
  --require=consensus/fast-path/failures:0:fast_commits \
  --require=consensus/fast-path/failures:1:fast_fallbacks \
  "--min-ratio=consensus/stable/failures:0|consensus/fast-path/failures:0|lat_p50_ms|1.0" \
  "--min-ratio=consensus/stable/failures:1|consensus/fast-path/failures:1|lat_p50_ms|0.25"

banner "verify.sh: all green"
