// Healthcare example (the paper's Section II motivation): edge zones store
// patient telemetry for remote monitoring; a travelling patient migrates
// between zone clusters and their records follow them — including across
// regulatory regions (zone clusters with separate regional meta-data).
//
//   $ ./build/examples/healthcare_monitoring

#include <cstdio>
#include <memory>

#include "app/health.h"
#include "core/system.h"
#include "tests/test_util.h"

using namespace ziziphus;

int main() {
  // Two zone clusters — think "EU" (Paris/London) and "APAC"
  // (Tokyo/Sydney) — each enforcing its own regional policies (Sec. VI).
  core::ZiziphusSystem system(/*seed=*/7, sim::LatencyModel::PaperGeoMatrix());
  system.AddZone(/*cluster=*/0, sim::kParis, 1, 4);   // zone 0 (EU)
  system.AddZone(/*cluster=*/0, sim::kLondon, 1, 4);  // zone 1 (EU)
  system.AddZone(/*cluster=*/1, sim::kTokyo, 1, 4);   // zone 2 (APAC)
  system.AddZone(/*cluster=*/1, sim::kSydney, 1, 4);  // zone 3 (APAC)
  system.Finalize(core::NodeConfig{}, [](ZoneId) {
    return std::make_unique<app::HealthStateMachine>();
  });

  // A patient whose wearable reports to the nearby Paris zone.
  testutil::TestClient patient(&system.keys(), 1);
  system.sim().Register(&patient, sim::kParis);
  system.BootstrapClient(patient.id(), /*home=*/0, nullptr);

  std::printf("-- patient %u monitored by the Paris zone --\n", patient.id());
  const char* readings[] = {"VITAL hr 72", "VITAL hr 75", "VITAL spo2 98",
                            "VITAL hr 81"};
  for (const char* r : readings) {
    patient.SubmitLocal(system.PrimaryOf(0)->id(), r);
    system.sim().RunFor(Millis(300));
  }
  auto q = patient.SubmitLocal(system.PrimaryOf(0)->id(), "COUNT hr");
  system.sim().RunFor(Millis(300));
  std::printf("heart-rate readings stored in Paris: %s\n",
              patient.ResultOf(q).c_str());

  // The patient flies to Tokyo: a cross-cluster migration. The destination
  // zone coordinates both clusters (CROSS-PROPOSE / PREPARED, Sec. VI) and
  // the Paris zone ships the certified patient record.
  std::printf("-- patient travels to Tokyo (cross-cluster migration) --\n");
  auto mig = patient.SubmitGlobal(system.PrimaryOf(2)->id(), /*source=*/0,
                                  /*dest=*/2);
  system.sim().RunFor(Seconds(3));
  std::printf("migration complete: %s\n",
              patient.MigrationDone(mig) ? "yes" : "no");

  // Tokyo now serves the history and accepts new readings; Paris will no
  // longer serve this patient (lock bit cleared).
  auto last = patient.SubmitLocal(system.PrimaryOf(2)->id(), "LAST hr");
  system.sim().RunFor(Millis(500));
  std::printf("last heart rate, served from Tokyo: %s\n",
              patient.ResultOf(last).c_str());
  patient.SubmitLocal(system.PrimaryOf(2)->id(), "VITAL hr 78");
  system.sim().RunFor(Millis(500));
  auto count = patient.SubmitLocal(system.PrimaryOf(2)->id(), "COUNT hr");
  system.sim().RunFor(Millis(500));
  std::printf("total readings after landing: %s\n",
              patient.ResultOf(count).c_str());

  bool paris_locked = system.Member(0, 0)->locks().IsLocked(patient.id());
  std::printf("Paris still serves the patient: %s (expected: no)\n",
              paris_locked ? "yes" : "no");

  // Regional meta-data stayed regional: EU zones and APAC zones both know
  // this patient's move (they were the two clusters involved).
  std::printf("homes recorded per zone: ");
  for (ZoneId z = 0; z < 4; ++z) {
    std::printf("z%u->%d ", z,
                static_cast<int>(
                    system.Member(z, 0)->metadata().HomeOf(patient.id())));
  }
  std::printf("\n");
  return 0;
}
