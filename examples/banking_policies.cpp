// Banking example with network-wide policies: the global system meta-data
// enforces "a client can migrate at most N times" and "a zone cannot host
// more than M clients" (Sections II and III-B). Violating migrations are
// committed, deterministically rejected at execution on every node, and the
// client keeps its old home.
//
//   $ ./build/examples/banking_policies

#include <cstdio>
#include <memory>

#include "app/bank.h"
#include "core/system.h"
#include "tests/test_util.h"

using namespace ziziphus;

int main() {
  core::NodeConfig cfg;
  cfg.policy.max_migrations_per_client = 2;
  cfg.policy.max_clients_per_zone = 3;

  core::ZiziphusSystem system(/*seed=*/11,
                              sim::LatencyModel::PaperGeoMatrix());
  system.AddZone(0, sim::kCalifornia, 1, 4);
  system.AddZone(0, sim::kOhio, 1, 4);
  system.AddZone(0, sim::kQuebec, 1, 4);
  system.Finalize(cfg, [](ZoneId) {
    return std::make_unique<app::BankStateMachine>();
  });

  testutil::TestClient alice(&system.keys(), 1);
  system.sim().Register(&alice, sim::kCalifornia);
  system.BootstrapClient(alice.id(), 0, [](ClientId id) {
    return storage::KvStore::Map{
        {app::BankStateMachine::AccountKey(id), "5000"}};
  });

  auto migrate = [&](ZoneId src, ZoneId dst) {
    auto ts = alice.SubmitGlobal(system.PrimaryOf(src)->id(), src, dst);
    system.sim().RunFor(Seconds(2));
    std::printf("  migrate z%u -> z%u: synced=%s done=%s result=\"%s\"\n",
                src, dst, alice.Synced(ts) ? "y" : "n",
                alice.MigrationDone(ts) ? "y" : "n",
                alice.ResultOf(ts).c_str());
  };

  std::printf("policy: at most 2 migrations per client\n");
  migrate(0, 1);  // ok (1st)
  migrate(1, 2);  // ok (2nd)
  migrate(2, 0);  // rejected: quota exhausted

  ZoneId home = system.Member(0, 0)->metadata().HomeOf(alice.id());
  std::printf("alice's home after three attempts: zone %u (expected 2)\n",
              home);
  auto& bank =
      static_cast<app::BankStateMachine&>(system.Member(home, 0)->app());
  std::printf("her balance travelled intact: $%lld (expected 5000)\n",
              static_cast<long long>(bank.BalanceOf(alice.id())));

  // Every node in every zone enforces the same verdict — policy
  // enforcement is part of the replicated execution, not a gateway check.
  std::uint64_t digest = system.nodes()[0]->metadata().StateDigest();
  bool all_agree = true;
  for (const auto& node : system.nodes()) {
    all_agree = all_agree && node->metadata().StateDigest() == digest;
  }
  std::printf("all 12 nodes agree on the meta-data: %s\n",
              all_agree ? "yes" : "no");
  return 0;
}
