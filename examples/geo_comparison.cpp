// Protocol comparison at a glance: runs the paper's four systems on the
// same three-zone geo deployment and workload, printing one row per
// protocol (a miniature of Figures 4/5; the bench/ binaries produce the
// full sweeps).
//
//   $ ./build/examples/geo_comparison [--clients=N] [--global=F]
//         [--zones=N] [--seed=N] [--trace]

#include <cstdio>

#include "app/experiment_config.h"

using namespace ziziphus;
using namespace ziziphus::app;

int main(int argc, char** argv) {
  ExperimentConfig cfg = ExperimentConfig::FromFlags(argc, argv)
                             .WithWarmup(Millis(600))
                             .WithMeasure(Seconds(1));
  if (argc <= 1) cfg.WithClients(200).WithGlobalFraction(0.1);

  std::printf(
      "%zu zones, %zu clients/zone, %.0f%% global transactions\n\n",
      cfg.zones, cfg.workload.clients_per_zone,
      cfg.workload.mix.global_fraction * 100);
  std::printf("%-16s %10s %10s %10s %12s %12s\n", "protocol", "ktps",
              "avg ms", "p99 ms", "local ms", "global ms");

  for (Protocol p : {Protocol::kZiziphus, Protocol::kTwoLevelPbft,
                     Protocol::kSteward, Protocol::kFlatPbft}) {
    ExperimentResult r = cfg.WithProtocol(p).Run();
    std::printf("%-16s %10.1f %10.1f %10.1f %12.1f %12.1f\n",
                ProtocolName(p), r.throughput_tps / 1000.0, r.avg_latency_ms,
                r.p99_ms, r.local_avg_ms, r.global_avg_ms);
    if (r.traces_completed > 0) {
      std::printf("  traced %llu ops: %.2f ms = wan %.2f + lan %.2f + queue "
                  "%.2f + crypto %.2f + phases\n",
                  static_cast<unsigned long long>(r.traces_completed),
                  r.trace_total_ms, r.trace_wan_ms, r.trace_lan_ms,
                  r.trace_queue_ms, r.trace_crypto_ms);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 4/5): ziziphus best, two-level-pbft\n"
      "close behind, steward and flat-pbft far below with geo-scale\n"
      "latencies on every transaction.\n");
  return 0;
}
