// Protocol comparison at a glance: runs the paper's four systems on the
// same three-zone geo deployment and workload, printing one row per
// protocol (a miniature of Figures 4/5; the bench/ binaries produce the
// full sweeps).
//
//   $ ./build/examples/geo_comparison [clients_per_zone] [global_percent]

#include <cstdio>
#include <cstdlib>

#include "app/experiment.h"

using namespace ziziphus;
using namespace ziziphus::app;

int main(int argc, char** argv) {
  WorkloadSpec wl;
  wl.clients_per_zone = argc > 1 ? std::atoi(argv[1]) : 200;
  wl.global_fraction = (argc > 2 ? std::atof(argv[2]) : 10.0) / 100.0;
  wl.warmup = Millis(600);
  wl.measure = Seconds(1);

  std::printf(
      "3 zones (CA/OH/QC), %zu clients/zone, %.0f%% global transactions\n\n",
      wl.clients_per_zone, wl.global_fraction * 100);
  std::printf("%-16s %10s %10s %10s %12s %12s\n", "protocol", "ktps",
              "avg ms", "p99 ms", "local ms", "global ms");

  for (Protocol p : {Protocol::kZiziphus, Protocol::kTwoLevelPbft,
                     Protocol::kSteward, Protocol::kFlatPbft}) {
    ExperimentResult r = RunExperiment(p, PaperDeployment(3), wl);
    std::printf("%-16s %10.1f %10.1f %10.1f %12.1f %12.1f\n",
                ProtocolName(p), r.throughput_tps / 1000.0, r.avg_latency_ms,
                r.p99_ms, r.local_avg_ms, r.global_avg_ms);
  }
  std::printf(
      "\nExpected shape (paper Fig. 4/5): ziziphus best, two-level-pbft\n"
      "close behind, steward and flat-pbft far below with geo-scale\n"
      "latencies on every transaction.\n");
  return 0;
}
