// Quickstart: bring up a three-zone Ziziphus deployment, run local banking
// transactions, migrate a client between zones, and inspect the replicated
// state.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "app/bank.h"
#include "core/system.h"
#include "tests/test_util.h"

using namespace ziziphus;

int main() {
  // 1. Three fault-tolerant zones (f=1, 4 nodes each) in the paper's
  //    California / Ohio / Quebec data centers, one zone cluster.
  core::ZiziphusSystem system(/*seed=*/2026,
                              sim::LatencyModel::PaperGeoMatrix());
  system.AddZone(/*cluster=*/0, sim::kCalifornia, /*f=*/1, /*nodes=*/4);
  system.AddZone(/*cluster=*/0, sim::kOhio, 1, 4);
  system.AddZone(/*cluster=*/0, sim::kQuebec, 1, 4);
  system.Finalize(core::NodeConfig{}, [](ZoneId) {
    return std::make_unique<app::BankStateMachine>();
  });

  // 2. A client homed in the California zone with a $1000 account.
  testutil::TestClient client(&system.keys(), /*f=*/1);
  system.sim().Register(&client, sim::kCalifornia);
  system.BootstrapClient(client.id(), /*home=*/0, [](ClientId id) {
    return storage::KvStore::Map{
        {app::BankStateMachine::AccountKey(id), "1000"}};
  });

  // 3. Local transactions: ordered by the zone's PBFT instance only —
  //    no cross-zone traffic.
  auto dep = client.SubmitLocal(system.PrimaryOf(0)->id(), "DEP 250");
  system.sim().RunFor(Seconds(1));
  std::printf("local deposit committed: %s (result \"%s\")\n",
              client.IsComplete(dep) ? "yes" : "no",
              client.ResultOf(dep).c_str());

  // 4. The client moves to Quebec: a global transaction. Algorithm 1
  //    synchronizes the system meta-data across all zones with a majority
  //    quorum; Algorithm 2 ships the account to the destination zone.
  auto mig = client.SubmitGlobal(system.PrimaryOf(0)->id(), /*source=*/0,
                                 /*dest=*/2);
  system.sim().RunFor(Seconds(2));
  std::printf("migration synced: %s, data migrated: %s\n",
              client.Synced(mig) ? "yes" : "no",
              client.MigrationDone(mig) ? "yes" : "no");

  // 5. Every node of every zone agrees on the client's new home.
  for (const auto& node : system.nodes()) {
    if (node->metadata().HomeOf(client.id()) != 2) {
      std::printf("node %u disagrees!\n", node->self());
      return 1;
    }
  }
  auto& quebec_bank =
      static_cast<app::BankStateMachine&>(system.Member(2, 0)->app());
  std::printf("balance now served by Quebec: $%lld\n",
              static_cast<long long>(quebec_bank.BalanceOf(client.id())));

  // 6. Local service resumes in the new zone.
  auto dep2 = client.SubmitLocal(system.PrimaryOf(2)->id(), "DEP 50");
  system.sim().RunFor(Seconds(1));
  std::printf("post-migration deposit committed: %s, balance $%lld\n",
              client.IsComplete(dep2) ? "yes" : "no",
              static_cast<long long>(quebec_bank.BalanceOf(client.id())));

  std::printf("simulated time elapsed: %.1f ms, messages: %llu\n",
              ToMillis(system.sim().Now()),
              static_cast<unsigned long long>(
                  system.sim().counters().Get(obs::CounterId::kNetMsgsSent)));
  return 0;
}
