// Scenario CLI: run a configurable Ziziphus (or baseline) deployment from
// the command line and print throughput/latency plus, when tracing is on,
// the critical-path decomposition of the traced operations — handy for
// exploring the design space beyond the fixed paper figures.
//
//   $ ./build/examples/scenario_cli --protocol=ziziphus --zones=5
//         --clients=200 --global=0.3 --clusters=1 --cross=0.0
//         --measure-ms=1500 --seed=7 --faults=1 --trace --json-out=obs.json
//
// Flags (all optional; the shared ExperimentConfig::FromFlags vocabulary):
//   --protocol=ziziphus|two-level-pbft|steward|flat-pbft
//   --zones=N           zones per cluster placement (paper regions)
//   --clusters=N        >1 switches to the clustered (Fig. 8) placement
//   --f=N               per-zone fault tolerance (zone size 3f+1)
//   --clients=N         closed-loop clients per zone
//   --global=F          fraction of global transactions (0..1)
//   --cross=F           fraction of globals that are cross-cluster (0..1)
//   --warmup-ms=N --measure-ms=N --seed=N
//   --faults=N          crashed backups per zone
//   --no-stable-leader  per-request leader election (Alg. 1 full form)
//   --trace             causal tracing over the measurement window
//   --sample-every=N    trace every n-th client operation (default: all)
//   --json-out=PATH     write the Recorder's JSON export to PATH

#include <cstdio>
#include <cstring>

#include "app/experiment_config.h"

using namespace ziziphus;
using namespace ziziphus::app;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: scenario_cli [--key=value ...] (see the header "
                   "comment for the flag vocabulary)\n");
      return 0;
    }
  }
  ExperimentConfig cfg = ExperimentConfig::FromFlags(argc, argv);
  std::printf("%s\n", cfg.ToString().c_str());

  ExperimentResult r = cfg.Run();

  std::printf("\n  %s\n", r.ToString().c_str());
  std::printf("  messages during measurement: %llu\n",
              static_cast<unsigned long long>(r.messages_sent));
  if (r.traces_completed > 0) {
    std::printf("\n  critical path over %llu traced ops (avg ms):\n",
                static_cast<unsigned long long>(r.traces_completed));
    std::printf("    total %.3f = wan %.3f + lan %.3f + queue %.3f + "
                "crypto %.3f\n",
                r.trace_total_ms, r.trace_wan_ms, r.trace_lan_ms,
                r.trace_queue_ms, r.trace_crypto_ms);
    for (const auto& [label, ms] : r.trace_phase_ms) {
      std::printf("      + %-22s %.3f\n", label.c_str(), ms);
    }
  }
  if (!cfg.obs.json_out.empty()) {
    std::printf("  observability export: %s\n", cfg.obs.json_out.c_str());
  }
  return 0;
}
