// Scenario CLI: run a configurable Ziziphus (or baseline) deployment from
// the command line and print throughput/latency plus protocol counters —
// handy for exploring the design space beyond the fixed paper figures.
//
//   $ ./build/examples/scenario_cli --protocol=ziziphus --zones=5
//         --clients=200 --global=0.3 --clusters=1 --cross=0.0
//         --measure-ms=1500 --seed=7 --faults=1 --counters
//
// Flags (all optional):
//   --protocol=ziziphus|two-level-pbft|steward|flat-pbft
//   --zones=N           zones per cluster placement (paper regions)
//   --clusters=N        >1 switches to the clustered (Fig. 8) placement
//   --f=N               per-zone fault tolerance (zone size 3f+1)
//   --clients=N         closed-loop clients per zone
//   --global=F          fraction of global transactions (0..1)
//   --cross=F           fraction of globals that are cross-cluster (0..1)
//   --warmup-ms=N --measure-ms=N --seed=N
//   --faults=N          crashed backups per zone
//   --no-stable-leader  per-request leader election (Alg. 1 full form)
//   --counters          dump protocol counters after the run

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "app/experiment.h"

using namespace ziziphus;
using namespace ziziphus::app;

namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

void Usage() {
  std::fprintf(stderr,
               "usage: scenario_cli [--protocol=P] [--zones=N] [--clusters=N]"
               " [--f=N]\n  [--clients=N] [--global=F] [--cross=F]"
               " [--warmup-ms=N] [--measure-ms=N]\n  [--seed=N] [--faults=N]"
               " [--no-stable-leader] [--counters]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Protocol protocol = Protocol::kZiziphus;
  std::size_t zones = 3, clusters = 1, f = 1;
  WorkloadSpec wl;
  wl.clients_per_zone = 100;
  wl.warmup = Millis(600);
  wl.measure = Seconds(1);
  FaultSpec faults;
  bool stable_leader = true;
  bool dump_counters = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "protocol", &v)) {
      if (v == "ziziphus") {
        protocol = Protocol::kZiziphus;
      } else if (v == "two-level-pbft") {
        protocol = Protocol::kTwoLevelPbft;
      } else if (v == "steward") {
        protocol = Protocol::kSteward;
      } else if (v == "flat-pbft") {
        protocol = Protocol::kFlatPbft;
      } else {
        std::fprintf(stderr, "unknown protocol %s\n", v.c_str());
        Usage();
        return 2;
      }
    } else if (FlagValue(argv[i], "zones", &v)) {
      zones = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "clusters", &v)) {
      clusters = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "f", &v)) {
      f = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "clients", &v)) {
      wl.clients_per_zone = std::strtoul(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "global", &v)) {
      wl.global_fraction = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argv[i], "cross", &v)) {
      wl.cross_cluster_fraction = std::strtod(v.c_str(), nullptr);
    } else if (FlagValue(argv[i], "warmup-ms", &v)) {
      wl.warmup = Millis(std::strtoul(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "measure-ms", &v)) {
      wl.measure = Millis(std::strtoul(v.c_str(), nullptr, 10));
    } else if (FlagValue(argv[i], "seed", &v)) {
      wl.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "faults", &v)) {
      faults.crashed_backups_per_zone = std::strtoul(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-stable-leader") == 0) {
      stable_leader = false;
    } else if (std::strcmp(argv[i], "--counters") == 0) {
      dump_counters = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage();
      return 2;
    }
  }

  DeploymentSpec dep = clusters > 1 ? ClusteredDeployment(clusters, zones, f)
                                    : PaperDeployment(zones, f);
  std::printf(
      "protocol=%s zones=%zu clusters=%zu f=%zu clients/zone=%zu "
      "global=%.0f%% cross=%.0f%% faults=%zu stable-leader=%s seed=%llu\n",
      ProtocolName(protocol), dep.zones.size(), dep.num_clusters(), f,
      wl.clients_per_zone, wl.global_fraction * 100,
      wl.cross_cluster_fraction * 100, faults.crashed_backups_per_zone,
      stable_leader ? "yes" : "no",
      static_cast<unsigned long long>(wl.seed));

  ExperimentResult r;
  if (!stable_leader &&
      (protocol == Protocol::kZiziphus || protocol == Protocol::kSteward)) {
    core::NodeConfig cfg = DefaultNodeConfig();
    cfg.sync.stable_leader = false;
    r = RunExperimentWithConfig(protocol, dep, wl, cfg, faults);
  } else {
    r = RunExperiment(protocol, dep, wl, faults);
  }

  std::printf("\n  %s\n", r.ToString().c_str());
  std::printf("  messages during measurement: %llu\n",
              static_cast<unsigned long long>(r.messages_sent));
  if (dump_counters) {
    std::printf("\n(protocol counters are per-run; re-run a scenario with a "
                "fixed seed for exact reproduction)\n");
  }
  return 0;
}
