# Empty dependencies file for bench_fig7_zonesize.
# This may be replaced when dependencies are built.
