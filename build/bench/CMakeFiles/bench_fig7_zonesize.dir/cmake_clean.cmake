file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_zonesize.dir/bench_fig7_zonesize.cc.o"
  "CMakeFiles/bench_fig7_zonesize.dir/bench_fig7_zonesize.cc.o.d"
  "bench_fig7_zonesize"
  "bench_fig7_zonesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_zonesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
