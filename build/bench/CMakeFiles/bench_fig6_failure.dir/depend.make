# Empty dependencies file for bench_fig6_failure.
# This may be replaced when dependencies are built.
