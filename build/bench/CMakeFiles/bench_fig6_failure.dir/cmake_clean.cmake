file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_failure.dir/bench_fig6_failure.cc.o"
  "CMakeFiles/bench_fig6_failure.dir/bench_fig6_failure.cc.o.d"
  "bench_fig6_failure"
  "bench_fig6_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
