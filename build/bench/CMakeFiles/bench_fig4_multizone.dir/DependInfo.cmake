
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_multizone.cc" "bench/CMakeFiles/bench_fig4_multizone.dir/bench_fig4_multizone.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_multizone.dir/bench_fig4_multizone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/ziziphus_app.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ziziphus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ziziphus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pbft/CMakeFiles/ziziphus_pbft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ziziphus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ziziphus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ziziphus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ziziphus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
