file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_multizone.dir/bench_fig4_multizone.cc.o"
  "CMakeFiles/bench_fig4_multizone.dir/bench_fig4_multizone.cc.o.d"
  "bench_fig4_multizone"
  "bench_fig4_multizone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_multizone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
