# Empty dependencies file for bench_fig4_multizone.
# This may be replaced when dependencies are built.
