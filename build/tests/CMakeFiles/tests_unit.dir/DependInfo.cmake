
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/tests_unit.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/tests_unit.dir/common_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/tests_unit.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/tests_unit.dir/crypto_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/tests_unit.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/tests_unit.dir/sim_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/tests_unit.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/tests_unit.dir/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ziziphus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ziziphus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ziziphus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ziziphus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
