file(REMOVE_RECURSE
  "CMakeFiles/tests_unit.dir/common_test.cc.o"
  "CMakeFiles/tests_unit.dir/common_test.cc.o.d"
  "CMakeFiles/tests_unit.dir/crypto_test.cc.o"
  "CMakeFiles/tests_unit.dir/crypto_test.cc.o.d"
  "CMakeFiles/tests_unit.dir/sim_test.cc.o"
  "CMakeFiles/tests_unit.dir/sim_test.cc.o.d"
  "CMakeFiles/tests_unit.dir/storage_test.cc.o"
  "CMakeFiles/tests_unit.dir/storage_test.cc.o.d"
  "tests_unit"
  "tests_unit.pdb"
  "tests_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
