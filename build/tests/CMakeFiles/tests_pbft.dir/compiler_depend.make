# Empty compiler generated dependencies file for tests_pbft.
# This may be replaced when dependencies are built.
