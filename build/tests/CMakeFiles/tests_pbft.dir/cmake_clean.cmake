file(REMOVE_RECURSE
  "CMakeFiles/tests_pbft.dir/pbft_test.cc.o"
  "CMakeFiles/tests_pbft.dir/pbft_test.cc.o.d"
  "CMakeFiles/tests_pbft.dir/view_change_test.cc.o"
  "CMakeFiles/tests_pbft.dir/view_change_test.cc.o.d"
  "tests_pbft"
  "tests_pbft.pdb"
  "tests_pbft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
