file(REMOVE_RECURSE
  "CMakeFiles/tests_app.dir/app_test.cc.o"
  "CMakeFiles/tests_app.dir/app_test.cc.o.d"
  "tests_app"
  "tests_app.pdb"
  "tests_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
