# Empty compiler generated dependencies file for tests_app.
# This may be replaced when dependencies are built.
