file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core_test.cc.o"
  "CMakeFiles/tests_core.dir/core_test.cc.o.d"
  "CMakeFiles/tests_core.dir/cross_cluster_test.cc.o"
  "CMakeFiles/tests_core.dir/cross_cluster_test.cc.o.d"
  "CMakeFiles/tests_core.dir/cross_zone_test.cc.o"
  "CMakeFiles/tests_core.dir/cross_zone_test.cc.o.d"
  "CMakeFiles/tests_core.dir/data_sync_unit_test.cc.o"
  "CMakeFiles/tests_core.dir/data_sync_unit_test.cc.o.d"
  "CMakeFiles/tests_core.dir/endorsement_test.cc.o"
  "CMakeFiles/tests_core.dir/endorsement_test.cc.o.d"
  "CMakeFiles/tests_core.dir/failure_test.cc.o"
  "CMakeFiles/tests_core.dir/failure_test.cc.o.d"
  "CMakeFiles/tests_core.dir/metadata_test.cc.o"
  "CMakeFiles/tests_core.dir/metadata_test.cc.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
