# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_unit[1]_include.cmake")
include("/root/repo/build/tests/tests_pbft[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_app[1]_include.cmake")
include("/root/repo/build/tests/tests_baselines[1]_include.cmake")
include("/root/repo/build/tests/tests_properties[1]_include.cmake")
