file(REMOVE_RECURSE
  "CMakeFiles/banking_policies.dir/banking_policies.cpp.o"
  "CMakeFiles/banking_policies.dir/banking_policies.cpp.o.d"
  "banking_policies"
  "banking_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
