# Empty dependencies file for banking_policies.
# This may be replaced when dependencies are built.
