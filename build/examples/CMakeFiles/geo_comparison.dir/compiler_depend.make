# Empty compiler generated dependencies file for geo_comparison.
# This may be replaced when dependencies are built.
