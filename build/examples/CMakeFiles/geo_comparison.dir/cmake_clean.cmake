file(REMOVE_RECURSE
  "CMakeFiles/geo_comparison.dir/geo_comparison.cpp.o"
  "CMakeFiles/geo_comparison.dir/geo_comparison.cpp.o.d"
  "geo_comparison"
  "geo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
