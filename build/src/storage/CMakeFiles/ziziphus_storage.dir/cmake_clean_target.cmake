file(REMOVE_RECURSE
  "libziziphus_storage.a"
)
