
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checkpoint.cc" "src/storage/CMakeFiles/ziziphus_storage.dir/checkpoint.cc.o" "gcc" "src/storage/CMakeFiles/ziziphus_storage.dir/checkpoint.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/storage/CMakeFiles/ziziphus_storage.dir/kv_store.cc.o" "gcc" "src/storage/CMakeFiles/ziziphus_storage.dir/kv_store.cc.o.d"
  "/root/repo/src/storage/log.cc" "src/storage/CMakeFiles/ziziphus_storage.dir/log.cc.o" "gcc" "src/storage/CMakeFiles/ziziphus_storage.dir/log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ziziphus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ziziphus_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
