file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_storage.dir/checkpoint.cc.o"
  "CMakeFiles/ziziphus_storage.dir/checkpoint.cc.o.d"
  "CMakeFiles/ziziphus_storage.dir/kv_store.cc.o"
  "CMakeFiles/ziziphus_storage.dir/kv_store.cc.o.d"
  "CMakeFiles/ziziphus_storage.dir/log.cc.o"
  "CMakeFiles/ziziphus_storage.dir/log.cc.o.d"
  "libziziphus_storage.a"
  "libziziphus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
