# Empty dependencies file for ziziphus_storage.
# This may be replaced when dependencies are built.
