file(REMOVE_RECURSE
  "libziziphus_core.a"
)
