# Empty dependencies file for ziziphus_core.
# This may be replaced when dependencies are built.
