file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_core.dir/data_sync.cc.o"
  "CMakeFiles/ziziphus_core.dir/data_sync.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/endorsement.cc.o"
  "CMakeFiles/ziziphus_core.dir/endorsement.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/lazy_sync.cc.o"
  "CMakeFiles/ziziphus_core.dir/lazy_sync.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/messages.cc.o"
  "CMakeFiles/ziziphus_core.dir/messages.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/metadata.cc.o"
  "CMakeFiles/ziziphus_core.dir/metadata.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/migration.cc.o"
  "CMakeFiles/ziziphus_core.dir/migration.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/node.cc.o"
  "CMakeFiles/ziziphus_core.dir/node.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/system.cc.o"
  "CMakeFiles/ziziphus_core.dir/system.cc.o.d"
  "CMakeFiles/ziziphus_core.dir/topology.cc.o"
  "CMakeFiles/ziziphus_core.dir/topology.cc.o.d"
  "libziziphus_core.a"
  "libziziphus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
