
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_sync.cc" "src/core/CMakeFiles/ziziphus_core.dir/data_sync.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/data_sync.cc.o.d"
  "/root/repo/src/core/endorsement.cc" "src/core/CMakeFiles/ziziphus_core.dir/endorsement.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/endorsement.cc.o.d"
  "/root/repo/src/core/lazy_sync.cc" "src/core/CMakeFiles/ziziphus_core.dir/lazy_sync.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/lazy_sync.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/core/CMakeFiles/ziziphus_core.dir/messages.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/messages.cc.o.d"
  "/root/repo/src/core/metadata.cc" "src/core/CMakeFiles/ziziphus_core.dir/metadata.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/metadata.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/core/CMakeFiles/ziziphus_core.dir/migration.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/migration.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/ziziphus_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/node.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/ziziphus_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/system.cc.o.d"
  "/root/repo/src/core/topology.cc" "src/core/CMakeFiles/ziziphus_core.dir/topology.cc.o" "gcc" "src/core/CMakeFiles/ziziphus_core.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ziziphus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ziziphus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ziziphus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ziziphus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pbft/CMakeFiles/ziziphus_pbft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
