# Empty compiler generated dependencies file for ziziphus_sim.
# This may be replaced when dependencies are built.
