file(REMOVE_RECURSE
  "libziziphus_sim.a"
)
