file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_sim.dir/latency_model.cc.o"
  "CMakeFiles/ziziphus_sim.dir/latency_model.cc.o.d"
  "CMakeFiles/ziziphus_sim.dir/simulation.cc.o"
  "CMakeFiles/ziziphus_sim.dir/simulation.cc.o.d"
  "libziziphus_sim.a"
  "libziziphus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
