# Empty dependencies file for ziziphus_pbft.
# This may be replaced when dependencies are built.
