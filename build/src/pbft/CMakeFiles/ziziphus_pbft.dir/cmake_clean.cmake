file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_pbft.dir/engine.cc.o"
  "CMakeFiles/ziziphus_pbft.dir/engine.cc.o.d"
  "libziziphus_pbft.a"
  "libziziphus_pbft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_pbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
