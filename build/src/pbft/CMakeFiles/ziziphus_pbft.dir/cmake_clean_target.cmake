file(REMOVE_RECURSE
  "libziziphus_pbft.a"
)
