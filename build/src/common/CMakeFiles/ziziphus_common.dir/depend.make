# Empty dependencies file for ziziphus_common.
# This may be replaced when dependencies are built.
