file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_common.dir/hash.cc.o"
  "CMakeFiles/ziziphus_common.dir/hash.cc.o.d"
  "CMakeFiles/ziziphus_common.dir/logging.cc.o"
  "CMakeFiles/ziziphus_common.dir/logging.cc.o.d"
  "CMakeFiles/ziziphus_common.dir/metrics.cc.o"
  "CMakeFiles/ziziphus_common.dir/metrics.cc.o.d"
  "CMakeFiles/ziziphus_common.dir/random.cc.o"
  "CMakeFiles/ziziphus_common.dir/random.cc.o.d"
  "CMakeFiles/ziziphus_common.dir/status.cc.o"
  "CMakeFiles/ziziphus_common.dir/status.cc.o.d"
  "CMakeFiles/ziziphus_common.dir/types.cc.o"
  "CMakeFiles/ziziphus_common.dir/types.cc.o.d"
  "libziziphus_common.a"
  "libziziphus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
