file(REMOVE_RECURSE
  "libziziphus_common.a"
)
