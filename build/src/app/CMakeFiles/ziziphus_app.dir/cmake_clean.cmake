file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_app.dir/bank.cc.o"
  "CMakeFiles/ziziphus_app.dir/bank.cc.o.d"
  "CMakeFiles/ziziphus_app.dir/client.cc.o"
  "CMakeFiles/ziziphus_app.dir/client.cc.o.d"
  "CMakeFiles/ziziphus_app.dir/experiment.cc.o"
  "CMakeFiles/ziziphus_app.dir/experiment.cc.o.d"
  "CMakeFiles/ziziphus_app.dir/health.cc.o"
  "CMakeFiles/ziziphus_app.dir/health.cc.o.d"
  "libziziphus_app.a"
  "libziziphus_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
