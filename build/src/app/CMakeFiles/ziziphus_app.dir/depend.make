# Empty dependencies file for ziziphus_app.
# This may be replaced when dependencies are built.
