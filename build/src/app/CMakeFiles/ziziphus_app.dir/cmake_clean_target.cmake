file(REMOVE_RECURSE
  "libziziphus_app.a"
)
