file(REMOVE_RECURSE
  "libziziphus_crypto.a"
)
