file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_crypto.dir/certificate.cc.o"
  "CMakeFiles/ziziphus_crypto.dir/certificate.cc.o.d"
  "libziziphus_crypto.a"
  "libziziphus_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
