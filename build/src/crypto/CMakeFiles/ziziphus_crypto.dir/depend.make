# Empty dependencies file for ziziphus_crypto.
# This may be replaced when dependencies are built.
