# Empty dependencies file for ziziphus_baselines.
# This may be replaced when dependencies are built.
