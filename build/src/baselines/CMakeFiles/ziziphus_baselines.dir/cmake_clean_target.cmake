file(REMOVE_RECURSE
  "libziziphus_baselines.a"
)
