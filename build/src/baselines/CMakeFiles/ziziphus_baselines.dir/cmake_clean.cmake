file(REMOVE_RECURSE
  "CMakeFiles/ziziphus_baselines.dir/two_level.cc.o"
  "CMakeFiles/ziziphus_baselines.dir/two_level.cc.o.d"
  "CMakeFiles/ziziphus_baselines.dir/two_level_system.cc.o"
  "CMakeFiles/ziziphus_baselines.dir/two_level_system.cc.o.d"
  "libziziphus_baselines.a"
  "libziziphus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ziziphus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
