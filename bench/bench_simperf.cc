// Simulator-performance benchmark: events/sec and allocations/event of the
// event hot path, comparing the calendar queue (default) against the binary
// heap it replaced.
//
// Two views, both on the Figure 4 multi-zone deployment:
//
//   Simperf/fig4/zones:Z   — end-to-end: the full Ziziphus experiment run
//                            twice (calendar, then heap) from one seed.
//                            Also asserts the determinism headline: both
//                            queues dispatch exactly the same event count.
//   Simperf/sched/zones:Z  — scheduler hot path isolated: a classic
//                            hold-model loop (pop-min, push successor)
//                            whose inter-event gap mix mirrors the Fig. 4
//                            schedule (LAN links, WAN links, protocol
//                            timers) at the deployment's queue depth.
//
// Every cell publishes cal_events_per_sec, heap_events_per_sec and their
// ratio as `speedup`, plus allocations/event measured by a global
// operator new count, so the exported ziziphus.bench.v1 JSON carries the
// whole comparison.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"
#include "common/random.h"
#include "sim/event_queue.h"

// ---- Allocation counter -------------------------------------------------
// Replaces the global allocation functions for this binary only; every
// operator new in the process bumps one relaxed atomic.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

std::uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- End-to-end: full Fig. 4 experiment on each queue -------------------

struct RunSample {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
  app::ExperimentResult result;
};

RunSample RunOnce(std::size_t zones, sim::EventQueueKind kind) {
  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(200, 50);
  wl.mix.global_fraction = 0.1;
  wl.queue = kind;
  std::uint64_t allocs0 = AllocCount();
  auto t0 = std::chrono::steady_clock::now();
  RunSample s;
  s.result = app::RunExperiment(app::Protocol::kZiziphus,
                                app::PaperDeployment(zones), wl);
  double secs = SecondsSince(t0);
  std::uint64_t allocs = AllocCount() - allocs0;
  s.events = s.result.events_dispatched;
  s.events_per_sec = secs > 0 ? static_cast<double>(s.events) / secs : 0;
  s.allocs_per_event =
      s.events > 0 ? static_cast<double>(allocs) / s.events : 0;
  return s;
}

void BM_Fig4EndToEnd(benchmark::State& state) {
  auto zones = static_cast<std::size_t>(state.range(0));
  // Alternate queue kinds and keep each kind's best repetition (see
  // BM_SchedulerHold) so background load hits both fairly.
  const int reps = SmokeSweep() ? 1 : 3;
  RunSample cal, heap;
  for (auto _ : state) {
    for (int r = 0; r < reps; ++r) {
      RunSample c = RunOnce(zones, sim::EventQueueKind::kCalendar);
      RunSample h = RunOnce(zones, sim::EventQueueKind::kBinaryHeap);
      if (c.events_per_sec > cal.events_per_sec) cal = c;
      if (h.events_per_sec > heap.events_per_sec) heap = h;
    }
  }
  // The determinism headline: same seed => the two schedulers dispatch the
  // identical event schedule (differential test asserts the full ExportJson
  // byte equality; the cheap probe here guards the benchmark's validity).
  if (cal.events != heap.events) {
    state.SkipWithError("queue kinds dispatched different event counts");
    return;
  }
  BenchCell cell;
  cell.name = "simperf/fig4/zones:" + std::to_string(zones) +
              "/clients:" + std::to_string(ClientsPerZone(200, 50));
  auto put = [&](const char* key, double v) {
    state.counters[key] = v;
    cell.metrics[key] = v;
  };
  put("events", static_cast<double>(cal.events));
  put("cal_events_per_sec", cal.events_per_sec);
  put("heap_events_per_sec", heap.events_per_sec);
  put("speedup", heap.events_per_sec > 0
                     ? cal.events_per_sec / heap.events_per_sec
                     : 0);
  put("cal_allocs_per_event", cal.allocs_per_event);
  put("heap_allocs_per_event", heap.allocs_per_event);
  put("tput_ktps", cal.result.throughput_tps / 1000.0);
  CollectedCells().push_back(std::move(cell));
}

// ---- Scheduler hot path: hold model on the Fig. 4 event mix -------------

/// Inter-event gap with the Fig. 4 schedule's flavor: mostly intra-region
/// hops, a WAN tail, and a sprinkle of protocol timers parked seconds out.
Duration HoldGap(Rng& rng) {
  std::uint64_t pick = rng.NextBounded(100);
  if (pick < 60) return rng.NextRange(200, 800);        // LAN link
  if (pick < 90) return rng.NextRange(30000, 150000);   // WAN link
  return Seconds(2) + rng.NextRange(0, Millis(500));    // protocol timer
}

struct HoldSample {
  double events_per_sec = 0;
  double allocs_per_event = 0;
};

HoldSample RunHold(sim::EventQueueKind kind, std::size_t depth,
                   std::uint64_t ops) {
  auto q = sim::EventQueue::Create(kind);
  Rng rng(2026);
  SimTime now = 0;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    q->Push(sim::SimEvent{now + HoldGap(rng), seq++, 0, nullptr, 0, 0, 0});
  }
  // Measure steady state only: the warm queue reuses pooled bucket storage.
  std::uint64_t allocs0 = AllocCount();
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    sim::SimEvent e = q->Pop();
    now = e.time;
    q->Push(sim::SimEvent{now + HoldGap(rng), seq++, 0, nullptr, 0, 0, 0});
  }
  double secs = SecondsSince(t0);
  std::uint64_t allocs = AllocCount() - allocs0;
  HoldSample s;
  s.events_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  s.allocs_per_event = ops > 0 ? static_cast<double>(allocs) / ops : 0;
  return s;
}

void BM_SchedulerHold(benchmark::State& state) {
  auto zones = static_cast<std::size_t>(state.range(0));
  // Queue depth tracks the deployment: every replica keeps timers and
  // in-flight messages parked, so depth ~ nodes x in-flight-per-node.
  std::size_t depth = zones * 4 * 512;
  std::uint64_t ops = SmokeSweep() ? 100000 : 1000000;
  // Alternate the two queue kinds and keep each kind's best repetition:
  // interleaving exposes both to the same background load, and best-of-N
  // is the standard throughput estimator on a shared machine.
  const int reps = SmokeSweep() ? 1 : 3;
  HoldSample cal, heap;
  for (auto _ : state) {
    for (int r = 0; r < reps; ++r) {
      HoldSample c = RunHold(sim::EventQueueKind::kCalendar, depth, ops);
      HoldSample h = RunHold(sim::EventQueueKind::kBinaryHeap, depth, ops);
      if (c.events_per_sec > cal.events_per_sec) cal = c;
      if (h.events_per_sec > heap.events_per_sec) heap = h;
    }
  }
  BenchCell cell;
  cell.name = "simperf/sched/zones:" + std::to_string(zones) +
              "/depth:" + std::to_string(depth);
  auto put = [&](const char* key, double v) {
    state.counters[key] = v;
    cell.metrics[key] = v;
  };
  put("depth", static_cast<double>(depth));
  put("events", static_cast<double>(ops));
  put("cal_events_per_sec", cal.events_per_sec);
  put("heap_events_per_sec", heap.events_per_sec);
  put("speedup", heap.events_per_sec > 0
                     ? cal.events_per_sec / heap.events_per_sec
                     : 0);
  put("cal_allocs_per_event", cal.allocs_per_event);
  put("heap_allocs_per_event", heap.allocs_per_event);
  CollectedCells().push_back(std::move(cell));
}

void RegisterAll() {
  for (int z : {3, 5, 7}) {
    benchmark::RegisterBenchmark(
        ("Simperf/sched/zones:" + std::to_string(z)).c_str(),
        BM_SchedulerHold)
        ->Args({z})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int z : {3, 5, 7}) {
    benchmark::RegisterBenchmark(
        ("Simperf/fig4/zones:" + std::to_string(z)).c_str(), BM_Fig4EndToEnd)
        ->Args({z})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("simperf");
