// Read-heavy mixes over the verified edge-read fast path.
//
// Cells: 90/10 and 99/1 read/write mixes, each run twice — once over the
// certified single-replica fast path ("fast") and once with every read
// forced through a full BAL transaction ("txn-path", the control arm) —
// plus the all-transaction baseline (read_fraction 0) and one causal-mode
// cell. All Ziziphus, 3 zones, paper placement.
//
// Expected shape: a fast-path read costs one request/reply exchange with a
// single replica plus client-side certificate verification, while the
// txn-path control pays full PBFT ordering for every read; committed
// ops/sec at 90/10 should come out well above 2x the control. The
// committed BENCH_reads.json at the repo root is validated by the
// bench_reads_committed ctest (schema + the 2x ratio).
//
// Reads anchor on stable checkpoints, so this bench tightens the
// checkpoint interval (2 vs the default 256): with the default, a short
// run would leave replicas with no anchor and every read would fall back,
// measuring nothing but the control arm twice.

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

core::NodeConfig ReadBenchConfig() {
  core::NodeConfig cfg = app::DefaultNodeConfig();
  // The interval counts sequence numbers (batches), not ops; with 64-op
  // batches under hundreds of clients an interval of 2 anchors roughly
  // every 128 ops. Anchor cadence bounds how long a freshly written
  // session stays uncovered, i.e. how many reads redirect per write.
  cfg.pbft.checkpoint_interval = 2;
  return cfg;
}

/// Like ReportCell, but through RunExperimentWithConfig (the tight
/// checkpoint interval) and with an explicit arm tag in the cell name so
/// the JSON validator can tell "fast" from "txn-path" apart.
void ReportReadCell(benchmark::State& state, const app::WorkloadSpec& wl,
                    const char* arm) {
  app::DeploymentSpec dep = app::PaperDeployment(3);
  app::ExperimentResult r;
  for (auto _ : state) {
    r = app::RunExperimentWithConfig(app::Protocol::kZiziphus, dep, wl,
                                     ReadBenchConfig());
  }
  std::ostringstream name;
  name << "ziziphus/zones:3/f:" << dep.f << "/clients:" << wl.clients_per_zone
       << "/global:" << std::lround(wl.mix.global_fraction * 100);
  if (wl.mix.read_fraction > 0) {
    name << "/reads:" << std::lround(wl.mix.read_fraction * 100);
  }
  name << "/" << arm;
  if (wl.causal) name << "/causal";
  ReportResult(state, name.str(), r);
}

void BM_Reads(benchmark::State& state) {
  int read_pct = static_cast<int>(state.range(0));
  bool verified = state.range(1) != 0;
  bool causal = state.range(2) != 0;

  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(200, 100);
  wl.mix.read_fraction = read_pct / 100.0;
  wl.mix.global_fraction = 0.05;
  wl.verified_reads = verified;
  wl.causal = causal;
  ReportReadCell(state, wl,
                 read_pct == 0 ? "all-txn" : (verified ? "fast" : "txn-path"));
}

void RegisterOne(const std::string& name, int read_pct, bool verified,
                 bool causal) {
  benchmark::RegisterBenchmark(name.c_str(), BM_Reads)
      ->Args({read_pct, verified ? 1 : 0, causal ? 1 : 0})
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void RegisterAll() {
  for (int pct : {90, 99}) {
    RegisterOne("Reads/mix:" + std::to_string(pct) + "/fast", pct,
                /*verified=*/true, /*causal=*/false);
    RegisterOne("Reads/mix:" + std::to_string(pct) + "/txn-path", pct,
                /*verified=*/false, /*causal=*/false);
  }
  // The write-only baseline the read mixes are compared against.
  RegisterOne("Reads/mix:0/all-txn", 0, /*verified=*/true, /*causal=*/false);
  // Causal sessions: floor vectors ride on writes; same fast path.
  RegisterOne("Reads/mix:90/fast/causal", 90, /*verified=*/true,
              /*causal=*/true);
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("reads");
