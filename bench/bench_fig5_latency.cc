// Figure 5 — "Latency with increasing the number of zones".
//
// The latency view of the Figure 4 experiment at the saturation point the
// paper highlights (400 concurrent clients per zone): average / p50 / p99
// end-to-end latency per protocol, zone count and workload.
//
// Expected shape: Ziziphus lowest latency everywhere; two-level PBFT
// noticeably higher on global transactions (PBFT at the top level);
// Steward pays geo-scale latency on every transaction; flat PBFT latency
// explodes with the number of zones.

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

void BM_Fig5(benchmark::State& state) {
  auto proto = static_cast<app::Protocol>(state.range(0));
  std::size_t zones = static_cast<std::size_t>(state.range(1));
  double global_pct = static_cast<double>(state.range(2));

  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(400, 200);
  wl.mix.global_fraction = global_pct / 100.0;
  // Fig. 5 is the latency figure: trace every client operation so the JSON
  // export carries the per-phase critical-path decomposition alongside the
  // end-to-end numbers.
  app::ObsSpec obs;
  obs.trace = true;
  ReportCell(state, proto, app::PaperDeployment(zones), wl, {}, obs);
}

void RegisterAll() {
  const int protos[] = {
      static_cast<int>(app::Protocol::kZiziphus),
      static_cast<int>(app::Protocol::kTwoLevelPbft),
      static_cast<int>(app::Protocol::kSteward),
      static_cast<int>(app::Protocol::kFlatPbft),
  };
  for (int z : {3, 5, 7}) {
    for (int w : {10, 30, 50}) {
      for (int p : protos) {
        std::string name =
            "Fig5/" +
            std::string(
                app::ProtocolName(static_cast<app::Protocol>(p))) +
            "/zones:" + std::to_string(z) + "/global%:" + std::to_string(w);
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig5)
            ->Args({p, z, w})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("fig5");
