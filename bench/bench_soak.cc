// Long-horizon soak: memory bounds and rejoin cost.
//
// Two experiments, exported to BENCH_soak.json ("ziziphus.bench.v1"):
//
//  1. soak/trim:{on,off} — a diurnal-wave workload with flash crowds,
//     one regional outage and amnesia crash/recover pairs, sampling the
//     fleet's retention-bounded bytes (PBFT logs/proofs/caches + data-sync
//     ballot state) throughout. With checkpoint-anchored trimming on, the
//     heap high-water curve must plateau (plateau_ratio ~ 1); with it off,
//     the same schedule grows without bound (the control arm).
//
//  2. rejoin/records:N/delta:{on,off} — time-to-rejoin of an amnesiac
//     replica versus the size of its zone's state, under delta versus
//     full-snapshot state transfer. Delta ships only the missed ops, so
//     its time-to-rejoin stays flat while the snapshot arm grows with N.
//
//   ZIZIPHUS_BENCH_JSON=BENCH_soak.json ./bench_soak

#include "app/experiment_config.h"
#include "app/soak.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

SoakOptions SoakFor(bool trim) {
  SoakOptions opt;
  opt.seed = BenchConfig().workload.seed;
  opt.queue = BenchConfig().workload.queue;
  opt.trim_at_checkpoint = trim;
  opt.compact_sync = trim;
  if (SmokeSweep()) {
    opt.schedule.horizon = Seconds(12);
    opt.schedule.wave_period = Seconds(4);
    opt.schedule.flash_crowds = 1;
    opt.schedule.flash_length = Millis(800);
    opt.schedule.regional_outages = 0;
    opt.schedule.amnesia_crashes = 1;
    opt.sample_period = Millis(500);
    opt.base_think = Millis(250);
    opt.pairs_per_zone = 1;
    opt.migrators = 1;
    opt.migrations_per_client = 1;
    opt.migrator_records = 100;
    opt.checkpoint_interval = 16;
  } else if (FullSweep()) {
    opt.schedule.horizon = Seconds(300);
    opt.schedule.flash_crowds = 5;
    opt.schedule.regional_outages = 2;
    opt.schedule.amnesia_crashes = 4;
  }
  return opt;
}

void BM_Soak(benchmark::State& state) {
  const bool trim = state.range(0) != 0;
  SoakReport r;
  for (auto _ : state) {
    r = RunZiziphusSoak(SoakFor(trim));
  }
  if (!r.ok()) {
    state.SkipWithError(r.Summary().c_str());
    return;
  }
  auto get = [&](const char* name) -> double {
    auto it = r.counters.find(name);
    return it == r.counters.end() ? 0.0 : static_cast<double>(it->second);
  };
  BenchCell cell;
  cell.name = std::string("soak/trim:") + (trim ? "on" : "off");
  auto put = [&](const char* key, double v) {
    state.counters[key] = v;
    cell.metrics[key] = v;
  };
  put("high_water_kb", static_cast<double>(r.high_water_live_bytes) / 1024.0);
  put("final_kb", static_cast<double>(r.final_live_bytes) / 1024.0);
  put("plateau_ratio", r.PlateauRatio());
  put("samples", static_cast<double>(r.samples.size()));
  put("local_ops", static_cast<double>(r.local_completed));
  put("global_ops", static_cast<double>(r.global_completed));
  put("log_trims", get("pbft.log_trims"));
  put("reply_evictions", get("pbft.reply_cache_evictions"));
  put("sync_compacted", get("sync.requests_compacted"));
  put("delta_transfers", get("pbft.delta_transfers"));
  put("full_transfers", get("pbft.full_transfers"));
  put("chunked_migrations", get("mig.chunked_transfers"));
  put("rejoins", get("recovery.rejoins"));
  CollectedCells().push_back(std::move(cell));
}
BENCHMARK(BM_Soak)
    ->ArgNames({"trim"})
    ->Args({1})
    ->Args({0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Rejoin(benchmark::State& state) {
  RejoinProbeOptions opt;
  opt.records = static_cast<std::size_t>(state.range(0));
  opt.delta_state_transfer = state.range(1) != 0;
  opt.queue = BenchConfig().workload.queue;
  opt.seed = BenchConfig().workload.seed;
  if (SmokeSweep()) {
    opt.warmup = Millis(800);
    opt.outage = Millis(800);
  }
  RejoinProbeResult r;
  for (auto _ : state) {
    r = RunRejoinProbe(opt);
  }
  if (!r.caught_up) {
    state.SkipWithError("victim did not catch up");
    return;
  }
  BenchCell cell;
  cell.name = "rejoin/records:" + std::to_string(opt.records) +
              "/delta:" + (opt.delta_state_transfer ? "on" : "off");
  auto put = [&](const char* key, double v) {
    state.counters[key] = v;
    cell.metrics[key] = v;
  };
  put("ttr_ms", static_cast<double>(r.time_to_rejoin) / 1000.0);
  put("transfer_kb", static_cast<double>(r.transfer_bytes) / 1024.0);
  put("delta_transfers", static_cast<double>(r.delta_transfers));
  put("full_transfers", static_cast<double>(r.full_transfers));
  put("caught_up", r.caught_up ? 1.0 : 0.0);
  CollectedCells().push_back(std::move(cell));
}
BENCHMARK(BM_Rejoin)
    ->ArgNames({"records", "delta"})
    ->Args({512, 1})
    ->Args({512, 0})
    ->Args({4096, 1})
    ->Args({4096, 0})
    ->Args({16384, 1})
    ->Args({16384, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("soak");
