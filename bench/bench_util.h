#ifndef ZIZIPHUS_BENCH_BENCH_UTIL_H_
#define ZIZIPHUS_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {

/// Set ZIZIPHUS_BENCH_FULL=1 for the paper-scale sweeps (longer runs,
/// denser client counts); default keeps the whole suite under a few
/// minutes.
inline bool FullSweep() {
  const char* env = std::getenv("ZIZIPHUS_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

/// Set ZIZIPHUS_BENCH_SMOKE=1 for the ctest `bench_smoke` suite: tiny
/// workloads so a filtered bench binary finishes in about a second while
/// still exercising the full run-and-export path.
inline bool SmokeSweep() {
  const char* env = std::getenv("ZIZIPHUS_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

/// Shared experiment knobs for this bench binary: sweep-scaled defaults
/// overlaid with any `--key=value` flags (the ExperimentConfig vocabulary:
/// --seed=, --measure-ms=, --queue=heap, ...) that ZIZIPHUS_BENCH_MAIN
/// consumes out of argv before google-benchmark rejects them as unknown.
/// Figure benches override the per-cell shape (zones, clients, global
/// fraction) but take warmup/measure/seed/queue from here.
inline app::ExperimentConfig& BenchConfig() {
  static app::ExperimentConfig cfg = [] {
    app::ExperimentConfig c;
    c.workload.warmup = FullSweep() ? Millis(800) : Millis(500);
    c.workload.measure = FullSweep() ? Seconds(2) : Millis(800);
    if (SmokeSweep()) {
      c.workload.warmup = Millis(200);
      c.workload.measure = Millis(250);
    }
    c.workload.seed = 42;
    return c;
  }();
  return cfg;
}

inline app::WorkloadSpec BaseWorkload() { return BenchConfig().workload; }

/// Sweep-scaled clients per zone (smoke mode clamps hard).
inline std::size_t ClientsPerZone(std::size_t full, std::size_t quick) {
  if (SmokeSweep()) return 10;
  return FullSweep() ? full : quick;
}

// ---- Machine-readable export (schema "ziziphus.bench.v1") --------------

/// One completed cell: its identity string plus every published metric.
struct BenchCell {
  std::string name;
  std::map<std::string, double> metrics;  // ordered => deterministic JSON
};

inline std::vector<BenchCell>& CollectedCells() {
  static std::vector<BenchCell> cells;
  return cells;
}

/// Publishes one experiment result both to google-benchmark's counters and
/// to the JSON collector.
inline void ReportResult(benchmark::State& state, std::string name,
                         const app::ExperimentResult& r) {
  BenchCell cell;
  cell.name = std::move(name);
  auto put = [&](const char* key, double v) {
    state.counters[key] = v;
    cell.metrics[key] = v;
  };
  put("tput_ktps", r.throughput_tps / 1000.0);
  put("lat_avg_ms", r.avg_latency_ms);
  put("lat_p50_ms", r.p50_ms);
  put("lat_p99_ms", r.p99_ms);
  put("local_ms", r.local_avg_ms);
  put("global_ms", r.global_avg_ms);
  put("local_ops", static_cast<double>(r.local_ops));
  put("global_ops", static_cast<double>(r.global_ops));
  put("timeouts", static_cast<double>(r.timeouts));
  if (r.traces_completed > 0) {
    put("traces", static_cast<double>(r.traces_completed));
    put("trace_total_ms", r.trace_total_ms);
    put("trace_wan_ms", r.trace_wan_ms);
    put("trace_lan_ms", r.trace_lan_ms);
    put("trace_queue_ms", r.trace_queue_ms);
    put("trace_crypto_ms", r.trace_crypto_ms);
    for (const auto& [label, ms] : r.trace_phase_ms) {
      cell.metrics["phase." + label] = ms;
    }
  }
  CollectedCells().push_back(std::move(cell));
}

/// Runs one experiment cell and publishes the figure's series as counters
/// and as a collected JSON cell.
inline void ReportCell(benchmark::State& state, app::Protocol proto,
                       const app::DeploymentSpec& dep,
                       const app::WorkloadSpec& wl,
                       const app::FaultSpec& faults = {},
                       const app::ObsSpec& obs = {}) {
  app::ExperimentResult r;
  for (auto _ : state) {
    r = app::RunExperiment(proto, dep, wl, faults, obs);
  }
  std::ostringstream name;
  name << app::ProtocolName(proto) << "/zones:" << dep.zones.size()
       << "/f:" << dep.f << "/clients:" << wl.clients_per_zone
       << "/global:" << std::lround(wl.global_fraction * 100);
  if (wl.cross_cluster_fraction > 0) {
    name << "/cross:" << std::lround(wl.cross_cluster_fraction * 100);
  }
  if (dep.num_clusters() > 1) name << "/clusters:" << dep.num_clusters();
  if (faults.crashed_backups_per_zone > 0) {
    name << "/crashed:" << faults.crashed_backups_per_zone;
  }
  ReportResult(state, name.str(), r);
}

/// Writes the collected cells as one deterministic JSON document to the
/// path in ZIZIPHUS_BENCH_JSON (no-op when unset). Schema:
///   {"schema":"ziziphus.bench.v1","bench":"<name>","cells":[
///     {"name":"...","metrics":{"lat_avg_ms":1.5,...}}, ...]}
inline void WriteBenchJson(const char* bench_name) {
  const char* path = std::getenv("ZIZIPHUS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::ofstream out(path);
  out << "{\"schema\":\"ziziphus.bench.v1\",\"bench\":\"" << bench_name
      << "\",\"cells\":[";
  bool first_cell = true;
  for (const BenchCell& cell : CollectedCells()) {
    out << (first_cell ? "" : ",") << "\n {\"name\":\"" << cell.name
        << "\",\"metrics\":{";
    first_cell = false;
    bool first = true;
    for (const auto& [key, value] : cell.metrics) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g",
                    std::isfinite(value) ? value : 0.0);
      out << (first ? "" : ",") << "\"" << key << "\":" << buf;
      first = false;
    }
    out << "}}";
  }
  out << "\n]}\n";
  std::fprintf(stderr, "bench json: %s (%zu cells)\n", path,
               CollectedCells().size());
}

}  // namespace ziziphus::bench

/// BENCHMARK_MAIN plus the ZIZIPHUS_BENCH_JSON export hook. Experiment
/// flags (--seed=, --queue=, ...) are consumed into BenchConfig() first so
/// only --benchmark_* flags reach google-benchmark's strict parser.
#define ZIZIPHUS_BENCH_MAIN(bench_name)                                 \
  int main(int argc, char** argv) {                                     \
    ::ziziphus::bench::BenchConfig().ConsumeFlags(&argc, argv);         \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    ::ziziphus::bench::WriteBenchJson(bench_name);                      \
    return 0;                                                           \
  }                                                                     \
  int zz_bench_main_anchor_ [[maybe_unused]] = 0

#endif  // ZIZIPHUS_BENCH_BENCH_UTIL_H_
