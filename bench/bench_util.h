#ifndef ZIZIPHUS_BENCH_BENCH_UTIL_H_
#define ZIZIPHUS_BENCH_BENCH_UTIL_H_

#include <cstdlib>

#include "app/experiment.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {

/// Set ZIZIPHUS_BENCH_FULL=1 for the paper-scale sweeps (longer runs,
/// denser client counts); default keeps the whole suite under a few
/// minutes.
inline bool FullSweep() {
  const char* env = std::getenv("ZIZIPHUS_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline app::WorkloadSpec BaseWorkload() {
  app::WorkloadSpec wl;
  wl.warmup = FullSweep() ? Millis(800) : Millis(500);
  wl.measure = FullSweep() ? Seconds(2) : Millis(800);
  wl.seed = 42;
  return wl;
}

/// Runs one experiment cell and publishes the figure's series as counters.
inline void ReportCell(benchmark::State& state, app::Protocol proto,
                       const app::DeploymentSpec& dep,
                       const app::WorkloadSpec& wl,
                       const app::FaultSpec& faults = {}) {
  app::ExperimentResult r;
  for (auto _ : state) {
    r = app::RunExperiment(proto, dep, wl, faults);
  }
  state.counters["tput_ktps"] = r.throughput_tps / 1000.0;
  state.counters["lat_avg_ms"] = r.avg_latency_ms;
  state.counters["lat_p50_ms"] = r.p50_ms;
  state.counters["lat_p99_ms"] = r.p99_ms;
  state.counters["local_ms"] = r.local_avg_ms;
  state.counters["global_ms"] = r.global_avg_ms;
  state.counters["local_ops"] = static_cast<double>(r.local_ops);
  state.counters["global_ops"] = static_cast<double>(r.global_ops);
  state.counters["timeouts"] = static_cast<double>(r.timeouts);
}

}  // namespace ziziphus::bench

#endif  // ZIZIPHUS_BENCH_BENCH_UTIL_H_
