// Ordering-strategy race: stable leader vs rotating primaries vs the
// optimistic fast path, each at 0 failures and again with f crashed
// backups per zone.
//
// Cells: consensus/<ordering>/failures:<k> for ordering in
// {stable, rotating, fast-path} and k in {0, f}. All Ziziphus, 3 zones,
// paper placement, identical workload — only the zone-ordering strategy
// and the fault load vary, so the latency columns are directly
// comparable.
//
// Expected shape: at 0 failures the fast path commits a slot on one
// FastVote round instead of prepare+commit, so its commit latency (and
// lat_p50_ms) comes in below the stable leader's. With f crashed backups
// unanimity is impossible and every fast round demotes to the certified
// fallback after the adaptive abandon timeout — throughput survives and
// latency degrades by a bounded factor rather than collapsing. The
// committed BENCH_consensus.json at the repo root is validated by the
// bench_consensus_committed ctest (schema, fast-path win at 0 failures,
// bounded degradation at f).

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"
#include "pbft/ordering.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

void BM_Consensus(benchmark::State& state) {
  auto ordering = static_cast<pbft::Ordering>(state.range(0));
  auto crashed = static_cast<std::size_t>(state.range(1));

  ExperimentConfig cfg;
  cfg.workload = BaseWorkload();
  cfg.workload.clients_per_zone = ClientsPerZone(200, 100);
  cfg.workload.mix.global_fraction = 0.05;
  cfg.WithProtocol(Protocol::kZiziphus)
      .WithOrdering(ordering)
      .WithCrashedBackups(crashed);

  ExperimentResult r;
  for (auto _ : state) {
    r = cfg.Run();
  }
  std::ostringstream name;
  name << "consensus/" << pbft::OrderingName(ordering)
       << "/failures:" << crashed;
  ReportResult(state, name.str(), r);
}

void RegisterAll() {
  for (pbft::Ordering o : {pbft::Ordering::kStable, pbft::Ordering::kRotating,
                           pbft::Ordering::kFastPath}) {
    for (std::size_t crashed : {std::size_t{0}, std::size_t{1}}) {
      std::string name = std::string("Consensus/") + pbft::OrderingName(o) +
                         "/crashed:" + std::to_string(crashed);
      benchmark::RegisterBenchmark(name.c_str(), BM_Consensus)
          ->Args({static_cast<long>(o), static_cast<long>(crashed)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("consensus");
