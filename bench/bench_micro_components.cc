// Micro-benchmarks of the substrate components (not in the paper; these
// quantify the building blocks the macro-benchmarks rest on and guard
// against performance regressions in the simulator itself).

#include <memory>

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"
#include "benchmark/benchmark.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/random.h"
#include "crypto/certificate.h"
#include "sim/simulation.h"
#include "storage/kv_store.h"

namespace ziziphus {
namespace {

void BM_Rng(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_Rng);

void BM_Hasher(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(
        Hasher(0x1).Add(i).Add("some-key").Add(i * 3).Finish());
  }
}
BENCHMARK(BM_Hasher);

void BM_SignVerify(benchmark::State& state) {
  crypto::KeyRegistry keys(7);
  std::uint64_t d = 0;
  for (auto _ : state) {
    crypto::Signature sig = keys.Sign(3, ++d);
    benchmark::DoNotOptimize(keys.Verify(sig, d));
  }
}
BENCHMARK(BM_SignVerify);

void BM_CertificateVerify(benchmark::State& state) {
  crypto::KeyRegistry keys(7);
  std::size_t quorum = static_cast<std::size_t>(state.range(0));
  crypto::CertificateBuilder builder(0x1234, quorum);
  for (NodeId n = 0; n < quorum; ++n) builder.Add(keys.Sign(n, 0x1234), 0x1234);
  auto member = [](NodeId n) { return n < 64; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::VerifyCertificate(
        keys, builder.certificate(), 0x1234, quorum, member));
  }
}
BENCHMARK(BM_CertificateVerify)->Arg(3)->Arg(7)->Arg(11);

void BM_KvStorePut(benchmark::State& state) {
  storage::KvStore kv;
  std::uint64_t i = 0;
  for (auto _ : state) {
    kv.Put("key/" + std::to_string(i++ % 10000), "value");
  }
  benchmark::DoNotOptimize(kv.StateDigest());
}
BENCHMARK(BM_KvStorePut);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  std::uint64_t i = 1;
  for (auto _ : state) h.Record(i++ % 100000);
  benchmark::DoNotOptimize(h.Quantile(0.99));
}
BENCHMARK(BM_HistogramRecord);

// Event-loop throughput: how many simulated message deliveries per second
// the kernel sustains (bounds total macro-bench wall time).
struct NullMsg : sim::Message {
  NullMsg() : Message(1) {}
  crypto::Digest ComputeDigest() const override { return 0; }
};
class PingPong : public sim::Process {
 public:
  NodeId peer = kInvalidNode;
  std::uint64_t remaining = 0;

  void OnMessage(const sim::MessagePtr& msg) override {
    if (remaining > 0) {
      --remaining;
      Send(peer, msg);
    }
  }
  using Process::Send;
};

void BM_SimEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(1, sim::LatencyModel::Uniform(1, 100));
    PingPong a, b;
    NodeId ida = sim.Register(&a, 0);
    NodeId idb = sim.Register(&b, 0);
    a.peer = idb;
    b.peer = ida;
    a.remaining = b.remaining = 50000;
    a.Send(idb, std::make_shared<NullMsg>());
    sim.RunUntilIdle();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(sim.events_dispatched()));
  }
}
BENCHMARK(BM_SimEventLoop)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ziziphus

ZIZIPHUS_BENCH_MAIN("micro");
