// Figure 6 — "Different number of zones (with failure)".
//
// Repeats the multi-zone experiment with a single crashed backup in each
// zone, at the saturation client count, reporting peak throughput and
// latency (the paper reports only the saturated point per protocol).
//
// Expected shape: the protocol ordering is preserved; flat PBFT suffers
// most because its quorums must now reach across every region (without
// failures it can form quorums from the nearby data centers).

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

void BM_Fig6(benchmark::State& state) {
  auto proto = static_cast<app::Protocol>(state.range(0));
  std::size_t zones = static_cast<std::size_t>(state.range(1));
  double global_pct = static_cast<double>(state.range(2));
  bool faulty = state.range(3) != 0;

  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(400, 200);
  wl.mix.global_fraction = global_pct / 100.0;
  app::FaultSpec faults;
  faults.crashed_backups_per_zone = faulty ? 1 : 0;
  ReportCell(state, proto, app::PaperDeployment(zones), wl, faults);
}

void RegisterAll() {
  const int protos[] = {
      static_cast<int>(app::Protocol::kZiziphus),
      static_cast<int>(app::Protocol::kTwoLevelPbft),
      static_cast<int>(app::Protocol::kSteward),
      static_cast<int>(app::Protocol::kFlatPbft),
  };
  for (int z : {3, 5, 7}) {
    for (int p : protos) {
      for (int faulty : {1, 0}) {
        std::string name =
            "Fig6/" +
            std::string(
                app::ProtocolName(static_cast<app::Protocol>(p))) +
            "/zones:" + std::to_string(z) +
            (faulty ? "/backup-crashed" : "/healthy");
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig6)
            ->Args({p, z, 10, faulty})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("fig6");
