// Figure 7 — "Different number of nodes per zone" (fault-tolerance
// scalability).
//
// Three zones in CA / OH / QC; per-zone fault tolerance f swept from 1 to 5
// (zone sizes 4 to 16 nodes, 12..48 nodes total; the flat PBFT group has
// 3*3f+1 = 10..46 nodes).
//
// Expected shape (paper, Section VII-C): every protocol slows down with
// larger zones (local PBFT's quadratic communication), but Ziziphus's
// latency grows least — its global phase is independent of zone size —
// while flat PBFT degrades drastically (all nodes of all zones exchange
// messages).

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

void BM_Fig7(benchmark::State& state) {
  auto proto = static_cast<app::Protocol>(state.range(0));
  std::size_t f = static_cast<std::size_t>(state.range(1));
  double global_pct = static_cast<double>(state.range(2));

  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(400, 150);
  wl.mix.global_fraction = global_pct / 100.0;
  ReportCell(state, proto, app::PaperDeployment(3, f), wl);
}

void RegisterAll() {
  const int protos[] = {
      static_cast<int>(app::Protocol::kZiziphus),
      static_cast<int>(app::Protocol::kTwoLevelPbft),
      static_cast<int>(app::Protocol::kSteward),
      static_cast<int>(app::Protocol::kFlatPbft),
  };
  for (int f = 1; f <= 5; ++f) {
    for (int p : protos) {
      std::string name =
          "Fig7/" +
          std::string(app::ProtocolName(static_cast<app::Protocol>(p))) +
          "/f:" + std::to_string(f) +
          "/zone-size:" + std::to_string(3 * f + 1);
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig7)
          ->Args({p, f, 10})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Ziziphus across workloads (the paper quotes the 10% line; we include
  // 30/50 for completeness).
  for (int w : {30, 50}) {
    for (int f = 1; f <= 5; f += 2) {
      std::string name = "Fig7/ziziphus/f:" + std::to_string(f) +
                         "/global%:" + std::to_string(w);
      benchmark::RegisterBenchmark(name.c_str(), BM_Fig7)
          ->Args({static_cast<int>(app::Protocol::kZiziphus), f, w})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("fig7");
