// Figure 8 — "Different number of zone clusters" (Section VII-D).
//
// 1..10 zone clusters of 3 zones x 4 nodes (up to 120 nodes), clusters
// placed in CA/SYD/PAR/LDN/TY (at most two per region). Six workloads
// crossing {10,30,50}% global transactions with {10,50}% of those being
// cross-cluster — the paper's .1G(.1C) ... .5G(.5C).
//
// Expected shape: throughput scales roughly linearly with the number of
// clusters (global synchronization is confined to one cluster; only
// cross-cluster migrations touch two), latency roughly flat beyond two
// clusters, best workload .1G(.1C).

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

void BM_Fig8(benchmark::State& state) {
  std::size_t clusters = static_cast<std::size_t>(state.range(0));
  double global_pct = static_cast<double>(state.range(1));
  double cross_pct = static_cast<double>(state.range(2));

  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(150, 60);
  wl.mix.global_fraction = global_pct / 100.0;
  wl.mix.cross_cluster_fraction = cross_pct / 100.0;
  ReportCell(state, app::Protocol::kZiziphus,
             app::ClusteredDeployment(clusters), wl);
}

void RegisterAll() {
  std::vector<int> cluster_counts =
      FullSweep() ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
                  : std::vector<int>{1, 2, 4, 6, 8, 10};
  for (int g : {10, 30, 50}) {
    for (int c : {10, 50}) {
      for (int n : cluster_counts) {
        std::string name = "Fig8/ziziphus/." + std::to_string(g / 10) +
                           "G(." + std::to_string(c / 10) +
                           "C)/clusters:" + std::to_string(n);
        benchmark::RegisterBenchmark(name.c_str(), BM_Fig8)
            ->Args({n, g, c})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("fig8");
