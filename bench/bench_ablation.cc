// Ablation benchmarks for Ziziphus's design choices (DESIGN.md §5):
//
//   1. prepare-skip   — Section IV-B1: follower-zone endorsements skip
//                       PBFT's prepare phase because the ballot is already
//                       certified. Toggling it quantifies the saving.
//   2. stable-leader  — Section IV-B1 (multi-Paxos style): skipping the
//                       propose/promise phases vs per-request election.
//   3. threshold-sigs — Section IV-B1 cites threshold schemes; without
//                       them every certificate costs 2f+1 verifications.
//   4. global-batching — the leader batches concurrent migrations into one
//                       data-synchronization instance; batch size 1
//                       reverts to one instance per migration.

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

const char* const kKnobNames[] = {"prepare-skip", "stable-leader",
                                  "threshold-sigs", "global-batching"};

app::WorkloadSpec AblationWorkload() {
  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = ClientsPerZone(400, 200);
  wl.mix.global_fraction = 0.1;
  return wl;
}

void BM_Ablation(benchmark::State& state) {
  int knob = static_cast<int>(state.range(0));
  bool enabled = state.range(1) != 0;

  core::NodeConfig cfg = app::DefaultNodeConfig();
  switch (knob) {
    case 0:  // prepare-skip
      cfg.sync.always_full_prepare = !enabled;
      break;
    case 1:  // stable leader
      cfg.sync.stable_leader = enabled;
      break;
    case 2:  // threshold signatures
      cfg.pbft.costs.crypto.threshold_signatures = enabled;
      cfg.sync.costs.crypto.threshold_signatures = enabled;
      cfg.migration.costs.crypto.threshold_signatures = enabled;
      break;
    case 3:  // global batching
      cfg.sync.batch_max = enabled ? 64 : 1;
      break;
    default:
      break;
  }
  app::ExperimentResult r;
  for (auto _ : state) {
    r = app::RunExperimentWithConfig(app::Protocol::kZiziphus,
                                     app::PaperDeployment(3),
                                     AblationWorkload(), cfg);
  }
  ReportResult(state,
               std::string(kKnobNames[knob]) + (enabled ? "/on" : "/off"), r);
}

void RegisterAll() {
  for (int knob = 0; knob < 4; ++knob) {
    for (int enabled : {1, 0}) {
      std::string name = std::string("Ablation/") + kKnobNames[knob] +
                         (enabled ? "/on" : "/off");
      benchmark::RegisterBenchmark(name.c_str(), BM_Ablation)
          ->Args({knob, enabled})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("ablation");
