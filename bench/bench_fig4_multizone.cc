// Figure 4 — "Throughput with increasing the number of zones".
//
// Reproduces the paper's Figure 4(a,b,c): end-to-end throughput of
// Ziziphus vs flat PBFT vs two-level PBFT vs Steward with 3 / 5 / 7 zones
// placed in the paper's AWS regions, for workloads with 10% / 30% / 50%
// global transactions, sweeping the number of closed-loop clients per zone.
//
// Expected shape (paper, Section VII-A): Ziziphus and two-level PBFT far
// above Steward and flat PBFT; Ziziphus best; flat PBFT collapses as zones
// are added; lower global fraction => higher throughput.

#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus::bench {
using namespace app;  // bench helpers live in app/experiment_config.h
namespace {

void BM_Fig4(benchmark::State& state) {
  auto proto = static_cast<app::Protocol>(state.range(0));
  std::size_t zones = static_cast<std::size_t>(state.range(1));
  double global_pct = static_cast<double>(state.range(2));
  std::size_t clients = static_cast<std::size_t>(state.range(3));

  app::WorkloadSpec wl = BaseWorkload();
  wl.clients_per_zone = SmokeSweep() ? 10 : clients;
  wl.mix.global_fraction = global_pct / 100.0;
  ReportCell(state, proto, app::PaperDeployment(zones), wl);
}

void RegisterAll() {
  const int protos[] = {
      static_cast<int>(app::Protocol::kZiziphus),
      static_cast<int>(app::Protocol::kTwoLevelPbft),
      static_cast<int>(app::Protocol::kSteward),
      static_cast<int>(app::Protocol::kFlatPbft),
  };
  const int zone_counts[] = {3, 5, 7};
  const int workloads[] = {10, 30, 50};
  std::vector<int> client_counts =
      FullSweep() ? std::vector<int>{10, 50, 100, 200, 300, 400}
                  : std::vector<int>{50, 200, 400};
  for (int z : zone_counts) {
    for (int w : workloads) {
      for (int p : protos) {
        for (int c : client_counts) {
          std::string name = "Fig4/" +
                             std::string(app::ProtocolName(
                                 static_cast<app::Protocol>(p))) +
                             "/zones:" + std::to_string(z) +
                             "/global%:" + std::to_string(w) +
                             "/clients:" + std::to_string(c);
          benchmark::RegisterBenchmark(name.c_str(), BM_Fig4)
              ->Args({p, z, w, c})
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

[[maybe_unused]] const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace ziziphus::bench

ZIZIPHUS_BENCH_MAIN("fig4");
