// Chaos-under-fire comparison: seeded randomized fault schedules (crashes,
// partitions, loss, duplication, delays, CPU slowdown) plus a Byzantine
// roster, run against Ziziphus and against the two-level PBFT baseline.
// Reported counters answer "how much does recovery cost": completion
// latency of the full workload, view changes, state transfers, and message
// overhead per seed. Any invariant violation aborts the benchmark — the
// harness doubles as a soak test.
//
// Each benchmark iteration uses a distinct seed (base + iteration index),
// so longer runs sweep more of the schedule space:
//   ./bench_chaos --benchmark_min_time=20x

#include <cstdlib>

#include "app/chaos.h"
#include "app/experiment_config.h"
#include "benchmark/benchmark.h"

namespace ziziphus {
namespace {

app::ChaosOptions OptionsFor(std::uint64_t seed, const benchmark::State& st) {
  // Start from the shared flag vocabulary (--crash-amnesia=, --think-ms=,
  // --fault-window-ms=, --queue=heap); the sweep's cell shape and seed
  // progression override the per-cell knobs below.
  app::ChaosOptions opt = app::BenchConfig().chaos;
  opt.queue = app::BenchConfig().workload.queue;
  opt.seed = seed;
  opt.zones = static_cast<std::size_t>(st.range(0));
  opt.byzantine_per_zone = static_cast<std::size_t>(st.range(1));
  if (app::SmokeSweep()) {
    opt.pairs_per_zone = 1;
    opt.xfers_per_client = 2;
    opt.migrators = 1;
    opt.migrations_per_client = 1;
    opt.client_think = Millis(200);
    opt.fault_window = Seconds(2);
    opt.drain = Seconds(2);
  }
  return opt;
}

/// Copies the summed run counters into the JSON collector.
void CollectCell(benchmark::State& state, const char* proto) {
  app::BenchCell cell;
  cell.name = std::string(proto) + "/zones:" + std::to_string(state.range(0)) +
              "/byz:" + std::to_string(state.range(1));
  for (const auto& [key, counter] : state.counters) {
    cell.metrics[key] = static_cast<double>(counter);
  }
  app::CollectedCells().push_back(std::move(cell));
}

void Tally(benchmark::State& state, const app::ChaosReport& r) {
  if (!r.ok()) {
    state.SkipWithError(r.Summary().c_str());
    return;
  }
  state.counters["end_time_s"] += static_cast<double>(r.end_time) / 1e6;
  state.counters["events"] += static_cast<double>(r.events);
  auto get = [&](const char* name) -> double {
    auto it = r.counters.find(name);
    return it == r.counters.end() ? 0.0 : static_cast<double>(it->second);
  };
  state.counters["view_changes"] += get("pbft.new_views_entered");
  state.counters["state_transfers"] += get("pbft.state_transfers");
  state.counters["msgs_sent"] += get("net.msgs_sent");
  state.counters["msgs_dropped"] += get("net.msgs_dropped");
  state.counters["crashes"] += get("faults.crashes");
  state.counters["byz_suppressed"] += get("byz.msgs_suppressed");
  state.counters["amnesia_crashes"] += get("faults.amnesia_crashes");
  state.counters["rejoins"] += get("recovery.rejoins");
  state.counters["st_retries"] += get("recovery.state_transfer_retries");
}

void BM_ZiziphusChaos(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    app::ChaosReport r = app::RunZiziphusChaos(OptionsFor(seed++, state));
    Tally(state, r);
    benchmark::DoNotOptimize(r.fingerprint);
  }
  CollectCell(state, "ziziphus");
}
BENCHMARK(BM_ZiziphusChaos)
    ->ArgNames({"zones", "byz"})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({5, 1})
    ->Unit(benchmark::kMillisecond);

void BM_TwoLevelChaos(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    app::ChaosReport r = app::RunTwoLevelChaos(OptionsFor(seed++, state));
    Tally(state, r);
    benchmark::DoNotOptimize(r.fingerprint);
  }
  CollectCell(state, "two-level-pbft");
}
BENCHMARK(BM_TwoLevelChaos)
    ->ArgNames({"zones", "byz"})
    ->Args({3, 0})
    ->Args({5, 0})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ziziphus

ZIZIPHUS_BENCH_MAIN("chaos");
